//! Discrete-event simulation of the distributed platform on arbitrary
//! machine pools.
//!
//! This is the substitute for the paper's physical testbed: it lets us
//! regenerate the Fig 2 speedup curve for 1–60 "Pentium IV" clients and
//! the Table 2 run with 150 heterogeneous machines without owning them.
//! The model captures exactly the effects that shape those results:
//!
//! * per-machine compute rate (Mflop/s) and per-task stochastic
//!   availability (non-dedicated usage);
//! * network latency/bandwidth for task assignment and result return;
//! * the server's sequential result-merging (a single 3 GHz P4 in the
//!   paper), which serialises under load;
//! * the scheduler: demand-driven self-scheduling by default, static or
//!   GA plans for the ablation.
//!
//! Simulated ("virtual") time is reported in seconds.

use crate::availability::AvailabilityModel;
use crate::machine::MachinePool;
use crate::network::NetworkModel;
use crate::scheduler::{Plan, Scheduler, SelfScheduling};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The computational job being distributed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Total photons to simulate.
    pub total_photons: u64,
    /// Calibrated cost of one photon (flops). See `DESIGN.md`: calibrated
    /// so the Table 2 pool finishes 10⁹ photons in about 2 hours, as the
    /// paper reports.
    pub flops_per_photon: f64,
    /// Photons per task (batch size).
    pub batch_photons: u64,
    /// Size of a task-assignment message (bytes).
    pub task_bytes: u64,
    /// Size of a returned result (bytes). A 50³ grid of f64 is ~1 MB.
    pub result_bytes: u64,
}

impl JobSpec {
    /// The paper's workload: 10⁹ photons at ~70 kflop each (calibrated so
    /// the Table 2 pool under semi-idle availability finishes in the ~2 h
    /// the paper reports — see DESIGN.md), 25 000-photon batches (small
    /// enough that the slowest Table 2 machine finishes a batch in
    /// minutes, bounding the tail), 1 MB results.
    pub fn paper_job() -> Self {
        Self {
            total_photons: 1_000_000_000,
            flops_per_photon: 7.0e4,
            batch_photons: 25_000,
            task_bytes: 512,
            result_bytes: 1_000_000,
        }
    }

    /// Number of tasks the job splits into.
    pub fn n_tasks(&self) -> u64 {
        self.total_photons.div_ceil(self.batch_photons)
    }

    /// Photons in task `i` (the last batch may be short).
    pub fn task_photons(&self, i: u64) -> u64 {
        let full = self.total_photons / self.batch_photons;
        if i < full {
            self.batch_photons
        } else {
            self.total_photons - full * self.batch_photons
        }
    }

    /// Flops for a batch of `photons`.
    pub fn batch_flops(&self, photons: u64) -> f64 {
        photons as f64 * self.flops_per_photon
    }

    /// Idealised sequential time on a dedicated machine of `mflops` (s).
    pub fn sequential_seconds(&self, mflops: f64) -> f64 {
        self.batch_flops(self.total_photons) / (mflops * 1e6)
    }

    /// Validate.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0)` also rejects NaN
    pub fn validate(&self) -> Result<(), String> {
        if self.total_photons == 0 {
            return Err("job needs at least one photon".into());
        }
        if self.batch_photons == 0 {
            return Err("batch size must be positive".into());
        }
        if !(self.flops_per_photon > 0.0) {
            return Err("flops per photon must be positive".into());
        }
        Ok(())
    }
}

/// The cluster being simulated.
///
/// ```
/// use lumen_cluster::{AvailabilityModel, ClusterSim, JobSpec, NetworkModel};
///
/// let sim = ClusterSim {
///     pool: lumen_cluster::homogeneous_pool(60),
///     network: NetworkModel::lan_2006(),
///     availability: AvailabilityModel::DEDICATED,
///     seed: 2006,
/// };
/// let report = sim.run(&JobSpec::paper_job());
/// assert!(report.efficiency(60) > 0.95); // the paper's Fig 2 headline
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSim {
    pub pool: MachinePool,
    pub network: NetworkModel,
    pub availability: AvailabilityModel,
    /// Seed for the availability streams.
    pub seed: u64,
}

/// Results of one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesReport {
    /// Virtual completion time of the whole job (s).
    pub makespan_s: f64,
    /// Virtual sequential time on the pool's fastest machine, dedicated (s).
    pub sequential_s: f64,
    /// Number of tasks executed.
    pub tasks: u64,
    /// Per-machine busy time (s).
    pub machine_busy_s: Vec<f64>,
    /// Per-machine completed task counts.
    pub machine_tasks: Vec<u64>,
    /// Per-machine photons simulated.
    pub machine_photons: Vec<u64>,
    /// Total server time spent merging results (s).
    pub server_busy_s: f64,
}

impl DesReport {
    /// Speedup relative to the sequential baseline.
    pub fn speedup(&self) -> f64 {
        self.sequential_s / self.makespan_s
    }

    /// Parallel efficiency for a pool of `k` machines.
    pub fn efficiency(&self, k: usize) -> f64 {
        self.speedup() / k as f64
    }

    /// Mean machine utilisation (busy time / makespan).
    pub fn mean_utilisation(&self) -> f64 {
        if self.machine_busy_s.is_empty() || self.makespan_s == 0.0 {
            return 0.0;
        }
        self.machine_busy_s.iter().sum::<f64>()
            / (self.machine_busy_s.len() as f64 * self.makespan_s)
    }
}

impl ClusterSim {
    /// Simulate `job` under the default demand-driven scheduler.
    pub fn run(&self, job: &JobSpec) -> DesReport {
        self.run_with(job, &SelfScheduling)
    }

    /// Simulate `job` under an arbitrary scheduler.
    pub fn run_with(&self, job: &JobSpec, scheduler: &dyn Scheduler) -> DesReport {
        job.validate().expect("invalid job");
        self.network.validate().expect("invalid network");
        self.availability.validate().expect("invalid availability model");
        let rates = self.pool.machine_rates();
        assert!(!rates.is_empty(), "cannot simulate an empty pool");

        let n_tasks = job.n_tasks();
        let plan = scheduler.plan(n_tasks as usize, &rates, self.seed);
        match plan {
            Plan::Dynamic => self.run_dynamic(job, &rates),
            Plan::Static(assignment) => self.run_static(job, &rates, &assignment),
        }
    }

    /// One task's cost on machine `m` with a fresh availability draw.
    fn task_seconds(
        &self,
        job: &JobSpec,
        photons: u64,
        rate_mflops: f64,
        avail: f64,
    ) -> (f64, f64) {
        let assign = self.network.transfer_time(job.task_bytes);
        let compute = job.batch_flops(photons) / (rate_mflops * 1e6 * avail);
        let ret = self.network.transfer_time(job.result_bytes);
        // (busy time on the machine, total latency before result reaches
        // the server).
        (compute, assign + compute + ret)
    }

    /// Demand-driven self-scheduling: the machine that frees first gets
    /// the next task.
    fn run_dynamic(&self, job: &JobSpec, rates: &[f64]) -> DesReport {
        let n = rates.len();
        let mut samplers: Vec<_> =
            (0..n).map(|m| self.availability.sampler(self.seed, m)).collect();
        let mut busy = vec![0.0f64; n];
        let mut tasks_done = vec![0u64; n];
        let mut photons_done = vec![0u64; n];
        // Min-heap of (next-free time, machine index).
        let mut heap: BinaryHeap<Reverse<(OrderedF64, usize)>> =
            (0..n).map(|m| Reverse((OrderedF64(0.0), m))).collect();
        let mut server_free = 0.0f64;
        let mut server_busy = 0.0f64;
        let mut makespan = 0.0f64;

        for task_id in 0..job.n_tasks() {
            let photons = job.task_photons(task_id);
            if photons == 0 {
                continue;
            }
            let Reverse((OrderedF64(free_at), m)) = heap.pop().expect("non-empty pool");
            let avail = samplers[m].next_fraction();
            let (compute, latency) = self.task_seconds(job, photons, rates[m], avail);
            let result_at_server = free_at + latency;
            // The server merges results one at a time.
            let merge_start = result_at_server.max(server_free);
            let merge_end = merge_start + self.network.server_merge_s;
            server_free = merge_end;
            server_busy += self.network.server_merge_s;
            busy[m] += compute;
            tasks_done[m] += 1;
            photons_done[m] += photons;
            makespan = makespan.max(merge_end);
            // The machine can request new work once its result is sent.
            heap.push(Reverse((OrderedF64(result_at_server), m)));
        }

        DesReport {
            makespan_s: makespan,
            sequential_s: job.sequential_seconds(self.pool.fastest_mflops()),
            tasks: job.n_tasks(),
            machine_busy_s: busy,
            machine_tasks: tasks_done,
            machine_photons: photons_done,
            server_busy_s: server_busy,
        }
    }

    /// Static plan: task `i` runs on machine `assignment[i]`, in index
    /// order per machine.
    fn run_static(&self, job: &JobSpec, rates: &[f64], assignment: &[usize]) -> DesReport {
        let n = rates.len();
        assert_eq!(assignment.len() as u64, job.n_tasks(), "plan covers all tasks");
        let mut samplers: Vec<_> =
            (0..n).map(|m| self.availability.sampler(self.seed, m)).collect();
        let mut busy = vec![0.0f64; n];
        let mut tasks_done = vec![0u64; n];
        let mut photons_done = vec![0u64; n];
        let mut machine_free = vec![0.0f64; n];
        // Collect result-arrival events, then serialise merges in time order.
        let mut arrivals: Vec<f64> = Vec::with_capacity(assignment.len());

        for (task_id, &m) in assignment.iter().enumerate() {
            assert!(m < n, "plan references machine {m} of {n}");
            let photons = job.task_photons(task_id as u64);
            if photons == 0 {
                continue;
            }
            let avail = samplers[m].next_fraction();
            let (compute, latency) = self.task_seconds(job, photons, rates[m], avail);
            let start = machine_free[m];
            machine_free[m] = start + latency;
            busy[m] += compute;
            tasks_done[m] += 1;
            photons_done[m] += photons;
            arrivals.push(start + latency);
        }

        arrivals.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let mut server_free = 0.0f64;
        let mut server_busy = 0.0f64;
        for t in arrivals {
            let merge_start = t.max(server_free);
            server_free = merge_start + self.network.server_merge_s;
            server_busy += self.network.server_merge_s;
        }

        DesReport {
            makespan_s: server_free.max(machine_free.iter().copied().fold(0.0, f64::max)),
            sequential_s: job.sequential_seconds(self.pool.fastest_mflops()),
            tasks: job.n_tasks(),
            machine_busy_s: busy,
            machine_tasks: tasks_done,
            machine_photons: photons_done,
            server_busy_s: server_busy,
        }
    }
}

/// Total-ordered f64 wrapper for the event heap (times are always finite).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("event times are finite")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{homogeneous_pool, table2_pool};

    fn dedicated_cluster(count: usize) -> ClusterSim {
        ClusterSim {
            pool: homogeneous_pool(count),
            network: NetworkModel::lan_2006(),
            availability: AvailabilityModel::DEDICATED,
            seed: 42,
        }
    }

    fn small_job() -> JobSpec {
        JobSpec {
            total_photons: 100_000_000,
            flops_per_photon: 1.0e5,
            batch_photons: 1_000_000,
            task_bytes: 512,
            result_bytes: 1_000_000,
        }
    }

    #[test]
    fn single_machine_speedup_is_near_one() {
        let report = dedicated_cluster(1).run(&small_job());
        let s = report.speedup();
        assert!((0.9..=1.0).contains(&s), "speedup {s}");
    }

    #[test]
    fn speedup_grows_with_machines() {
        let job = small_job();
        let s1 = dedicated_cluster(1).run(&job).speedup();
        let s10 = dedicated_cluster(10).run(&job).speedup();
        let s30 = dedicated_cluster(30).run(&job).speedup();
        assert!(s1 < s10 && s10 < s30, "{s1} {s10} {s30}");
    }

    #[test]
    fn sixty_homogeneous_machines_are_efficient() {
        // The paper's headline: ≥97 % efficiency at 60 processors. Use the
        // paper-scale job so there are ~17 batches per machine.
        let job = JobSpec::paper_job();
        let report = dedicated_cluster(60).run(&job);
        let eff = report.efficiency(60);
        assert!(eff > 0.95, "efficiency at 60 machines: {eff}");
        assert!(eff <= 1.0 + 1e-9, "efficiency cannot exceed 1: {eff}");
    }

    #[test]
    fn work_is_conserved() {
        let job = small_job();
        let report = dedicated_cluster(7).run(&job);
        let photons: u64 = report.machine_photons.iter().sum();
        assert_eq!(photons, job.total_photons);
        let tasks: u64 = report.machine_tasks.iter().sum();
        assert_eq!(tasks, job.n_tasks());
    }

    #[test]
    fn heterogeneous_fast_machines_do_more_work() {
        let sim = ClusterSim {
            pool: table2_pool(),
            network: NetworkModel::lan_2006(),
            availability: AvailabilityModel::DEDICATED,
            seed: 1,
        };
        let report = sim.run(&JobSpec::paper_job());
        let rates = sim.pool.machine_rates();
        // Mean photons for the fast class (209.5) vs slow class (29.5).
        let avg = |target: f64| {
            let (mut sum, mut cnt) = (0u64, 0u64);
            for (i, &r) in rates.iter().enumerate() {
                if (r - target).abs() < 1e-9 {
                    sum += report.machine_photons[i];
                    cnt += 1;
                }
            }
            sum as f64 / cnt as f64
        };
        let fast = avg(209.5);
        let slow = avg(29.5);
        assert!(
            fast > 4.0 * slow,
            "fast machines should do ~7x the work: fast {fast}, slow {slow}"
        );
    }

    #[test]
    fn table2_job_takes_about_two_hours() {
        // The paper: "each simulation taking approximately 2 hours" for
        // 10⁹ photons on the Table 2 pool with non-dedicated usage.
        let sim = ClusterSim {
            pool: table2_pool(),
            network: NetworkModel::lan_2006(),
            availability: AvailabilityModel::semi_idle(),
            seed: 7,
        };
        let report = sim.run(&JobSpec::paper_job());
        let hours = report.makespan_s / 3600.0;
        assert!(
            (1.0..4.0).contains(&hours),
            "makespan should be on the order of 2 h, got {hours:.2} h"
        );
    }

    #[test]
    fn non_dedicated_usage_slows_the_run() {
        let job = JobSpec::paper_job();
        let ded = ClusterSim {
            pool: homogeneous_pool(20),
            network: NetworkModel::lan_2006(),
            availability: AvailabilityModel::DEDICATED,
            seed: 3,
        }
        .run(&job);
        let semi = ClusterSim {
            pool: homogeneous_pool(20),
            network: NetworkModel::lan_2006(),
            availability: AvailabilityModel::semi_idle(),
            seed: 3,
        }
        .run(&job);
        assert!(semi.makespan_s > ded.makespan_s);
    }

    #[test]
    fn deterministic_given_seed() {
        let job = small_job();
        let mk = |seed| {
            ClusterSim {
                pool: table2_pool(),
                network: NetworkModel::lan_2006(),
                availability: AvailabilityModel::semi_idle(),
                seed,
            }
            .run(&job)
        };
        assert_eq!(mk(5), mk(5));
        assert_ne!(mk(5).makespan_s, mk(6).makespan_s);
    }

    #[test]
    fn job_spec_task_arithmetic() {
        let job = JobSpec {
            total_photons: 10_500_000,
            flops_per_photon: 1.0,
            batch_photons: 1_000_000,
            task_bytes: 1,
            result_bytes: 1,
        };
        assert_eq!(job.n_tasks(), 11);
        assert_eq!(job.task_photons(0), 1_000_000);
        assert_eq!(job.task_photons(10), 500_000);
        let total: u64 = (0..job.n_tasks()).map(|i| job.task_photons(i)).sum();
        assert_eq!(total, job.total_photons);
    }

    #[test]
    fn utilisation_is_bounded() {
        let report = dedicated_cluster(13).run(&small_job());
        let u = report.mean_utilisation();
        assert!((0.0..=1.0).contains(&u), "utilisation {u}");
    }
}
