//! Machine descriptions for the cluster simulator, including the paper's
//! Table 2 inventory.
//!
//! The paper characterises clients by their measured Java processing rate
//! in Mflop/s and the memory available to the JVM. Table 2 (150 machines):
//!
//! | # | Mflop/s | RAM (MB) | O/S | Processor |
//! |---|---------|----------|-----|-----------|
//! | 91 | 28–31 | 256 | Linux | P3 600 MHz |
//! | 50 | 190–229 | 512 | Linux | P4 2.4 GHz |
//! | 4 | 15 | 192 | Linux | P2 266 MHz |
//! | 1 | 154 | 1024 | Windows XP | P4 Centrino 1.4 GHz |
//! | 1 | 25 | 512 | Linux | P3 500 MHz |
//! | 1 | 37 | 256 | Linux | P3 1 GHz |
//! | 1 | 72 | 256 | Linux | P4 1.7 GHz |
//! | 1 | 91 | 1024 | FreeBSD | AMD 2400+XP |
//!
//! Ranges are represented by their midpoints; the stochastic availability
//! model supplies the run-to-run variation the ranges reflect.

use serde::{Deserialize, Serialize};

/// One class of identical machines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineClass {
    /// How many machines of this class the pool has.
    pub count: usize,
    /// Peak processing rate (Mflop/s, as measured by the platform's
    /// benchmark — Java-level, not hardware peak).
    pub mflops: f64,
    /// Memory available to the runtime (MB).
    pub ram_mb: u32,
    /// Operating system label (reporting only).
    pub os: String,
    /// Processor label (reporting only).
    pub cpu: String,
}

/// A pool of machines: the flattened list of classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachinePool {
    pub classes: Vec<MachineClass>,
}

impl MachinePool {
    /// Total machine count.
    pub fn len(&self) -> usize {
        self.classes.iter().map(|c| c.count).sum()
    }

    /// True when the pool has no machines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate peak rate of the pool (Mflop/s).
    pub fn total_mflops(&self) -> f64 {
        self.classes.iter().map(|c| c.count as f64 * c.mflops).sum()
    }

    /// Per-machine peak rates, one entry per machine (class order).
    pub fn machine_rates(&self) -> Vec<f64> {
        let mut rates = Vec::with_capacity(self.len());
        for class in &self.classes {
            rates.extend(std::iter::repeat_n(class.mflops, class.count));
        }
        rates
    }

    /// Rate of the fastest machine class (the natural sequential baseline:
    /// you would time P1 on the best machine you have).
    pub fn fastest_mflops(&self) -> f64 {
        self.classes.iter().map(|c| c.mflops).fold(0.0, f64::max)
    }
}

/// The paper's Table 2: 150 heterogeneous, non-dedicated clients.
pub fn table2_pool() -> MachinePool {
    MachinePool {
        classes: vec![
            MachineClass {
                count: 91,
                mflops: 29.5,
                ram_mb: 256,
                os: "Linux".into(),
                cpu: "P3 600MHz".into(),
            },
            MachineClass {
                count: 50,
                mflops: 209.5,
                ram_mb: 512,
                os: "Linux".into(),
                cpu: "P4 2.4GHz".into(),
            },
            MachineClass {
                count: 4,
                mflops: 15.0,
                ram_mb: 192,
                os: "Linux".into(),
                cpu: "P2 266MHz".into(),
            },
            MachineClass {
                count: 1,
                mflops: 154.0,
                ram_mb: 1024,
                os: "Windows XP".into(),
                cpu: "P4 Centrino 1.4GHz".into(),
            },
            MachineClass {
                count: 1,
                mflops: 25.0,
                ram_mb: 512,
                os: "Linux".into(),
                cpu: "P3 500MHz".into(),
            },
            MachineClass {
                count: 1,
                mflops: 37.0,
                ram_mb: 256,
                os: "Linux".into(),
                cpu: "P3 1GHz".into(),
            },
            MachineClass {
                count: 1,
                mflops: 72.0,
                ram_mb: 256,
                os: "Linux".into(),
                cpu: "P4 1.7GHz".into(),
            },
            MachineClass {
                count: 1,
                mflops: 91.0,
                ram_mb: 1024,
                os: "FreeBSD".into(),
                cpu: "AMD 2400+XP".into(),
            },
        ],
    }
}

/// The Fig 2 speedup experiment's machines: homogeneous "Pentium IVs with
/// 512 MB RAM" (the Table 2 P4 2.4 GHz rate).
pub fn homogeneous_pool(count: usize) -> MachinePool {
    MachinePool {
        classes: vec![MachineClass {
            count,
            mflops: 209.5,
            ram_mb: 512,
            os: "Linux".into(),
            cpu: "P4 2.4GHz".into(),
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_150_machines() {
        assert_eq!(table2_pool().len(), 150);
    }

    #[test]
    fn table2_aggregate_rate() {
        let pool = table2_pool();
        // 91*29.5 + 50*209.5 + 4*15 + 154 + 25 + 37 + 72 + 91 = 13598.5
        assert!((pool.total_mflops() - 13_598.5).abs() < 1e-9);
    }

    #[test]
    fn table2_fastest_is_p4() {
        assert_eq!(table2_pool().fastest_mflops(), 209.5);
    }

    #[test]
    fn machine_rates_flatten_classes() {
        let pool = table2_pool();
        let rates = pool.machine_rates();
        assert_eq!(rates.len(), 150);
        assert_eq!(rates.iter().filter(|&&r| r == 29.5).count(), 91);
        assert_eq!(rates.iter().filter(|&&r| r == 209.5).count(), 50);
    }

    #[test]
    fn homogeneous_pool_shape() {
        let pool = homogeneous_pool(60);
        assert_eq!(pool.len(), 60);
        assert_eq!(pool.classes.len(), 1);
        assert!((pool.total_mflops() - 60.0 * 209.5).abs() < 1e-9);
    }

    #[test]
    fn empty_pool() {
        let pool = homogeneous_pool(0);
        assert!(pool.is_empty());
        assert_eq!(pool.fastest_mflops(), 209.5);
    }
}
