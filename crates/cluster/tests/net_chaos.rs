//! Chaos suite for the elastic TCP runtime — the paper's *non-dedicated
//! cluster* conditions, reproduced deliberately: clients join late, stall
//! past their lease, announce the wrong protocol version, die while
//! parked or while holding work, or never show up at all.
//!
//! Every test asserts one of exactly two outcomes: a tally **bit-identical
//! to `Sequential`** for the same `Scenario` (requeue determinism: the
//! same `task_id` re-runs the same RNG substream), or a **typed error**
//! (`NetError::Incomplete`, `VersionMismatch`, `InvalidConfig`) — never a
//! silently partial `Ok`, and never a hang (each body runs under a
//! watchdog). Photon budgets are small so the whole suite stays in the
//! fast loop on a single-core container.

use lumen_cluster::net::{
    handshake, read_frame, write_frame, KIND_ASSIGN, KIND_COMPLETE, KIND_HELLO, KIND_REQUEST,
};
use lumen_cluster::wire;
use lumen_cluster::{serve_with_options, NetError, NetReport, ServeOptions, Tcp};
use lumen_core::engine::{Backend, Scenario, Sequential};
use lumen_core::{Detector, Simulation, Source};
use lumen_tissue::presets::semi_infinite_phantom;
use mcrng::StreamFactory;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

/// Abort the test (with a named panic, not a CI timeout) if `f` does not
/// finish within `limit` — the suite's "never a hang" guarantee.
fn watchdog<T: Send + 'static>(
    name: &str,
    limit: Duration,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let body = thread::spawn(move || {
        tx.send(f()).ok();
    });
    match rx.recv_timeout(limit) {
        Ok(v) => {
            body.join().ok();
            v
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("watchdog: `{name}` still running after {limit:?} — the server hung")
        }
        // The body panicked before sending: re-raise its panic, not ours.
        Err(mpsc::RecvTimeoutError::Disconnected) => match body.join() {
            Err(cause) => std::panic::resume_unwind(cause),
            Ok(()) => panic!("watchdog: `{name}` exited without a result"),
        },
    }
}

fn sim() -> Simulation {
    Simulation::new(
        semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
        Source::Delta,
        Detector::new(1.0, 0.5),
    )
}

fn sequential_tally(s: &Simulation, n: u64, seed: u64, tasks: u64) -> lumen_core::tally::Tally {
    let scenario = Scenario::from_simulation(s, n, seed).with_tasks(tasks);
    Sequential.run(&scenario).expect("valid scenario").result.tally.clone()
}

/// Connect-with-retry: the server's listener comes up asynchronously.
fn connect(addr: &str) -> TcpStream {
    for _ in 0..500 {
        if let Ok(c) = TcpStream::connect(addr) {
            return c;
        }
        thread::sleep(Duration::from_millis(5));
    }
    panic!("could not connect to {addr}");
}

/// A well-behaved protocol client driven frame-by-frame, for tests that
/// need to stop (or misbehave) at an exact point in the conversation.
struct ManualClient {
    stream: TcpStream,
}

impl ManualClient {
    fn joined(addr: &str) -> Self {
        let mut stream = connect(addr);
        handshake(&mut stream).expect("handshake");
        Self { stream }
    }

    /// Request and receive one assignment, leaving the lease open.
    fn take_task(&mut self) -> lumen_cluster::protocol::SimTask {
        write_frame(&mut self.stream, KIND_REQUEST, &[]).expect("request");
        let (kind, payload) = read_frame(&mut self.stream).expect("assignment");
        assert_eq!(kind, KIND_ASSIGN, "expected an assignment");
        wire::decode_task(&payload).expect("task decodes")
    }
}

/// Run `run_client` loops until the server shuts them down, asserting
/// client-side success.
fn spawn_client(addr: &str, s: &Simulation, seed: u64) -> thread::JoinHandle<u64> {
    let addr = addr.to_string();
    let s = s.clone();
    thread::spawn(move || {
        for _ in 0..500 {
            match lumen_cluster::run_client(&addr, &s, seed) {
                Ok(n) => return n,
                Err(_) => thread::sleep(Duration::from_millis(5)),
            }
        }
        panic!("client never connected");
    })
}

fn serve_on(
    s: &Simulation,
    n: u64,
    tasks: u64,
    options: ServeOptions,
) -> (String, thread::JoinHandle<Result<NetReport, NetError>>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let s = s.clone();
    let server = thread::spawn(move || {
        serve_with_options(listener, &s, n, tasks, options, &lumen_core::engine::NoProgress)
    });
    (addr, server)
}

#[test]
fn late_joiner_is_served_and_counted() {
    watchdog("late_joiner", Duration::from_secs(60), || {
        let s = sim();
        let (n, tasks, seed) = (2_000, 8, 11);
        // min_clients = 2: the first client's requests park until the
        // quorum arrives, proving both the start gate and that a later
        // connection is admitted mid-run and handed work immediately.
        let options = ServeOptions::default().with_min_clients(2);
        let (addr, server) = serve_on(&s, n, tasks, options);

        let a = spawn_client(&addr, &s, seed);
        thread::sleep(Duration::from_millis(300));
        let b = spawn_client(&addr, &s, seed);

        let report = server.join().expect("server thread").expect("serve ok");
        let done = a.join().expect("a") + b.join().expect("b");

        assert_eq!(done, tasks);
        assert_eq!(report.clients_served, 2, "late joiner must be counted");
        assert_eq!(report.result.tally, sequential_tally(&s, n, seed, tasks));
    });
}

#[test]
fn lease_timeout_revokes_and_requeues_bit_identically() {
    watchdog("lease_timeout", Duration::from_secs(60), || {
        let s = sim();
        let (n, tasks, seed) = (2_000, 4, 3);
        let options = ServeOptions::default()
            .with_min_clients(1)
            .with_lease_timeout(Duration::from_millis(300));
        let (addr, server) = serve_on(&s, n, tasks, options);

        // A stalling client takes a task and never completes it; its
        // lease must be revoked at the deadline and the identical batch
        // re-run elsewhere.
        let mut staller = ManualClient::joined(&addr);
        let stalled_task = staller.take_task();

        thread::sleep(Duration::from_millis(100));
        let good = spawn_client(&addr, &s, seed);

        let report = server.join().expect("server thread").expect("serve ok");
        assert!(report.requeues >= 1, "the stalled lease must be requeued");
        assert_eq!(report.result.tally, sequential_tally(&s, n, seed, tasks));

        // The laggard was cut at revocation: its connection is dead.
        let gone = read_frame(&mut staller.stream);
        assert!(gone.is_err(), "revoked client should have been disconnected");
        let completed = good.join().expect("good client");
        assert_eq!(completed, tasks, "the survivor re-ran task {}", stalled_task.task_id);
    });
}

#[test]
fn lost_task_regression_dead_parked_worker_and_dead_lease_holder() {
    watchdog("lost_task_regression", Duration::from_secs(60), || {
        // The PR-2 runtime dropped a task on the floor here: B parks in
        // `waiting`, dies (its Disconnected event is consumed), then A —
        // holding the only lease — dies too; the requeue loop popped dead
        // B, `send(..).ok()` swallowed the failure, and the run ended
        // with a partial tally reported as success. Now B is purged from
        // the wait queue, the hand-off failure requeues, and a fresh
        // client C finishes the run bit-identically.
        let s = sim();
        let (n, tasks, seed) = (1_000, 1, 21);
        let (addr, server) = serve_on(&s, n, tasks, ServeOptions::default());

        // A takes the only task and holds it.
        let mut a = ManualClient::joined(&addr);
        let _leased = a.take_task();

        // B requests (queue empty -> parks in `waiting`), poisons its
        // connection with a garbage frame, and dies. When the requeue
        // below hands B the surrendered task, the hand-off must fail
        // fast and put the task back instead of dropping it.
        let mut b = ManualClient::joined(&addr);
        write_frame(&mut b.stream, KIND_REQUEST, &[]).expect("request");
        thread::sleep(Duration::from_millis(100));
        write_frame(&mut b.stream, 0x7f, b"garbage").expect("poison frame");
        drop(b);
        thread::sleep(Duration::from_millis(100));

        // A dies holding the lease: the task must survive both corpses.
        drop(a);
        thread::sleep(Duration::from_millis(100));

        let c = spawn_client(&addr, &s, seed);
        let report = server.join().expect("server thread").expect("serve ok");
        assert!(report.requeues >= 1);
        assert_eq!(c.join().expect("c"), 1);
        assert_eq!(
            report.result.tally,
            sequential_tally(&s, n, seed, tasks),
            "a task lost twice must still produce the sequential bits"
        );
    });
}

#[test]
fn all_clients_gone_is_a_typed_incomplete_error_not_partial_ok() {
    watchdog("all_clients_gone", Duration::from_secs(60), || {
        let s = sim();
        // The grace is generous relative to the connect/assign round-trip
        // (which must land before it expires on a loaded 1-core runner),
        // while keeping the test fast: the clock effectively starts when
        // the crash below empties the pool.
        let options =
            ServeOptions::default().with_min_clients(1).with_join_grace(Duration::from_secs(3));
        let (addr, server) = serve_on(&s, 2_000, 4, options);

        // The single client takes a task and crashes mid-work; nobody
        // replaces it within the grace period.
        let mut only = ManualClient::joined(&addr);
        let _task = only.take_task();
        drop(only);

        match server.join().expect("server thread") {
            Err(NetError::Incomplete { photons_done, photons_total, requeues }) => {
                assert_eq!(photons_done, 0, "no task completed");
                assert_eq!(photons_total, 2_000);
                assert!(requeues >= 1, "the crashed lease was requeued first");
            }
            other => panic!("expected NetError::Incomplete, got {other:?}"),
        }
    });
}

#[test]
fn idle_connected_client_cannot_hang_the_run() {
    watchdog("idle_zombie", Duration::from_secs(60), || {
        // A client that handshakes and then goes silent — no REQUEST, no
        // lease — must not hold the run open forever: after a lease
        // period of idleness it is cut, the pool empties, and the grace
        // period converts the stall into a typed error.
        let s = sim();
        let options = ServeOptions::default()
            .with_min_clients(1)
            .with_lease_timeout(Duration::from_millis(300))
            .with_join_grace(Duration::from_secs(2));
        let (addr, server) = serve_on(&s, 1_000, 2, options);

        let zombie = ManualClient::joined(&addr);
        match server.join().expect("server thread") {
            Err(NetError::Incomplete { photons_done: 0, requeues: 0, .. }) => {}
            other => panic!("expected Incomplete (no work ever done), got {other:?}"),
        }
        drop(zombie);
    });
}

#[test]
fn zero_clients_times_out_with_typed_error() {
    watchdog("zero_clients", Duration::from_secs(30), || {
        let s = sim();
        let options =
            ServeOptions::default().with_min_clients(1).with_join_grace(Duration::from_millis(200));
        let (_addr, server) = serve_on(&s, 1_000, 4, options);
        match server.join().expect("server thread") {
            Err(NetError::Incomplete { photons_done: 0, .. }) => {}
            other => panic!("expected Incomplete with zero photons, got {other:?}"),
        }
    });
}

#[test]
fn version_mismatch_hello_is_rejected_typed_on_both_ends() {
    watchdog("version_mismatch", Duration::from_secs(60), || {
        // Server side: a peer announcing the wrong version is answered
        // with our version and rejected before it can join the pool; the
        // run still completes with the compliant client only.
        let s = sim();
        let (n, tasks, seed) = (1_000, 2, 9);
        let (addr, server) = serve_on(&s, n, tasks, ServeOptions::default());

        let mut old_peer = connect(&addr);
        write_frame(&mut old_peer, KIND_HELLO, &[wire::VERSION - 1]).expect("hello");
        let (kind, payload) = read_frame(&mut old_peer).expect("server answers first");
        assert_eq!(kind, KIND_HELLO);
        assert_eq!(payload, vec![wire::VERSION], "server announces its own version");
        assert!(
            read_frame(&mut old_peer).is_err(),
            "mismatched peer must be disconnected after the answer"
        );

        let good = spawn_client(&addr, &s, seed);
        let report = server.join().expect("server thread").expect("serve ok");
        assert_eq!(good.join().expect("good"), tasks);
        assert_eq!(report.clients_served, 1, "the mismatched peer never joined");
        assert_eq!(report.result.tally, sequential_tally(&s, n, seed, tasks));
    });
}

#[test]
fn client_detects_server_version_mismatch() {
    watchdog("client_version_check", Duration::from_secs(30), || {
        // A fake "server" speaking a future version: `run_client` must
        // fail with the typed mismatch, not a decode error mid-run.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let fake = thread::spawn(move || {
            let (mut peer, _) = listener.accept().expect("accept");
            let (kind, _) = read_frame(&mut peer).expect("client hello");
            assert_eq!(kind, KIND_HELLO);
            write_frame(&mut peer, KIND_HELLO, &[wire::VERSION + 1]).expect("reply");
        });
        let err = lumen_cluster::run_client(&addr, &sim(), 1).unwrap_err();
        match err {
            NetError::VersionMismatch { ours, theirs } => {
                assert_eq!(ours, wire::VERSION);
                assert_eq!(theirs, wire::VERSION + 1);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        fake.join().expect("fake server");
    });
}

#[test]
fn stale_completion_after_revocation_never_double_counts() {
    watchdog("stale_completion", Duration::from_secs(60), || {
        // A laggard finishes its task *after* the lease was revoked and
        // the batch re-run by someone else. The stale tally must be
        // dropped: merging it would double-count the batch's photons.
        let s = sim();
        let (n, tasks, seed) = (2_000, 4, 17);
        let options = ServeOptions::default()
            .with_min_clients(1)
            .with_lease_timeout(Duration::from_millis(250));
        let (addr, server) = serve_on(&s, n, tasks, options);

        let mut laggard = ManualClient::joined(&addr);
        let task = laggard.take_task();
        // Simulate the batch but sit on the result until well past the
        // deadline, then try to submit it anyway.
        let mut tally = s.new_tally();
        let mut rng = StreamFactory::new(seed).stream(task.task_id);
        s.run_stream(task.photons, &mut rng, &mut tally, None);
        thread::sleep(Duration::from_millis(500));
        let stale = write_frame(&mut laggard.stream, KIND_COMPLETE, &wire::encode_tally(&tally));
        // The revocation cut the socket, so the submit usually fails; if
        // the bytes do get out, the server must drop them (lease gone).
        let _ = stale;

        let good = spawn_client(&addr, &s, seed);
        let report = server.join().expect("server thread").expect("serve ok");
        good.join().expect("good client");
        assert_eq!(report.result.launched(), n, "every photon exactly once");
        assert_eq!(report.result.tally, sequential_tally(&s, n, seed, tasks));
        assert!(report.requeues >= 1);
    });
}

#[test]
fn backend_run_surfaces_serve_failures_as_typed_engine_errors() {
    watchdog("backend_errors", Duration::from_secs(30), || {
        // Through `Backend::run`: an invalid scenario is InvalidConfig...
        let mut bad = Scenario::from_simulation(&sim(), 1_000, 1).with_tasks(4);
        bad.detector.radius = -1.0;
        let err = Tcp::new("127.0.0.1:0").run(&bad).unwrap_err();
        assert!(matches!(err, lumen_core::engine::EngineError::InvalidConfig(_)), "{err}");

        // ...and a run abandoned with no clients is a Backend error
        // naming the incomplete state, never an Ok with an empty tally.
        let scenario = Scenario::from_simulation(&sim(), 1_000, 1).with_tasks(4);
        let err = Tcp::new("127.0.0.1:0")
            .with_join_grace(Duration::from_millis(200))
            .run(&scenario)
            .unwrap_err();
        match err {
            lumen_core::engine::EngineError::Backend { backend, reason } => {
                assert_eq!(backend, "tcp");
                assert!(reason.contains("incomplete"), "reason names the failure: {reason}");
            }
            other => panic!("expected a backend error, got {other:?}"),
        }
    });
}
