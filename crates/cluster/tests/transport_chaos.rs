//! Scale leg for the shared transport core: one poll loop, one thread,
//! a hundred-plus concurrent clients — joiners, quitters, and stallers
//! all at once. The thread-per-connection runtime capped out at thread
//! limits; the readiness loop must take the same churn at 100+ sockets
//! and still produce a tally **bit-identical to `Sequential`**, because
//! requeue determinism (same `task_id` ⇒ same RNG substream) does not
//! care how many connections multiplex over one loop.

use lumen_cluster::net::{handshake, write_frame, KIND_ASSIGN, KIND_REQUEST};
use lumen_cluster::{run_client, serve_with_options, NetError, NetReport, ServeOptions};
use lumen_core::engine::{Backend, Scenario, Sequential};
use lumen_core::{Detector, Simulation, Source};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

/// Well-behaved clients that run tasks to completion.
const GOOD: usize = 96;
/// Clients that take one task each and sit on the lease until revoked.
const STALLERS: usize = 8;
/// Clients that handshake into the pool and immediately vanish.
const QUITTERS: usize = 8;

/// Abort the test (with a named panic, not a CI timeout) if `f` does not
/// finish within `limit`.
fn watchdog<T: Send + 'static>(
    name: &str,
    limit: Duration,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let body = thread::spawn(move || {
        tx.send(f()).ok();
    });
    match rx.recv_timeout(limit) {
        Ok(v) => {
            body.join().ok();
            v
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("watchdog: `{name}` still running after {limit:?} — the server hung")
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => match body.join() {
            Err(cause) => std::panic::resume_unwind(cause),
            Ok(()) => panic!("watchdog: `{name}` exited without a result"),
        },
    }
}

fn sim() -> Simulation {
    Simulation::new(
        lumen_tissue::presets::semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
        Source::Delta,
        Detector::new(1.0, 0.5),
    )
}

fn connect(addr: &str) -> TcpStream {
    for _ in 0..500 {
        if let Ok(c) = TcpStream::connect(addr) {
            return c;
        }
        thread::sleep(Duration::from_millis(5));
    }
    panic!("could not connect to {addr}");
}

/// A client loop that rides out transient failures (a spurious lease
/// revocation under scheduler pressure cuts the socket mid-run): retry
/// until the server is gone. The authoritative assertions live on the
/// server's report, not on any individual client's fate.
fn spawn_resilient_client(addr: &str, s: &Simulation, seed: u64) -> thread::JoinHandle<u64> {
    let addr = addr.to_string();
    let s = s.clone();
    thread::spawn(move || {
        let deadline = Instant::now() + Duration::from_secs(90);
        loop {
            match run_client(&addr, &s, seed) {
                Ok(n) => return n,
                Err(_) if Instant::now() < deadline => thread::sleep(Duration::from_millis(10)),
                Err(_) => return 0,
            }
        }
    })
}

#[test]
fn hundred_plus_clients_with_churn_produce_sequential_bits() {
    watchdog("hundred_plus_clients", Duration::from_secs(120), || {
        let s = sim();
        let (n, tasks, seed) = (24_000, 192, 77);
        let options = ServeOptions::default().with_lease_timeout(Duration::from_millis(800));

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = {
            let s = s.clone();
            thread::spawn(move || -> Result<NetReport, NetError> {
                serve_with_options(listener, &s, n, tasks, options, &lumen_core::engine::NoProgress)
            })
        };

        // Stallers: join, take one task each, never complete it. Their
        // leases must be revoked and the identical batches re-run.
        let stallers: Vec<TcpStream> = (0..STALLERS)
            .map(|_| {
                let mut stream = connect(&addr);
                handshake(&mut stream).expect("staller handshake");
                write_frame(&mut stream, KIND_REQUEST, &[]).expect("staller request");
                let (kind, _) =
                    lumen_cluster::net::read_frame(&mut stream).expect("staller assignment");
                assert_eq!(kind, KIND_ASSIGN);
                stream // held open, silent, until the run is over
            })
            .collect();

        // Quitters: handshake into the pool, then vanish without ever
        // requesting work — pure connection churn.
        for _ in 0..QUITTERS {
            let mut stream = connect(&addr);
            handshake(&mut stream).expect("quitter handshake");
            drop(stream);
        }

        // The workforce: enough concurrent connections that a
        // thread-per-socket server would be juggling 100+ threads; the
        // poll loop runs them all from one.
        let good: Vec<_> = (0..GOOD).map(|_| spawn_resilient_client(&addr, &s, seed)).collect();

        let report = server.join().expect("server thread").expect("serve ok");
        drop(stallers);
        let completed: u64 = good.into_iter().map(|h| h.join().expect("good client")).sum();

        // Every batch ran somewhere; the stalled ones ran twice, with the
        // stale lease dropped — so the bits match a sequential run.
        let scenario = Scenario::from_simulation(&s, n, seed).with_tasks(tasks);
        let reference = Sequential.run(&scenario).expect("valid scenario").result.tally;
        assert_eq!(report.result.tally, reference, "churn must not change the physics");
        assert_eq!(report.result.launched(), n, "every photon exactly once");
        assert!(
            report.requeues >= STALLERS as u64,
            "each staller held a lease that had to be revoked (requeues = {})",
            report.requeues
        );
        assert!(
            report.clients_served >= GOOD + STALLERS + QUITTERS,
            "all {} connections passed the HELLO gate (served = {})",
            GOOD + STALLERS + QUITTERS,
            report.clients_served
        );
        // Client-side counts miss any session cut by a spurious
        // revocation (the server still tallied its batches), so this is
        // deliberately loose; `launched() == n` above is the strict one.
        assert!(completed >= tasks / 2, "the workforce did the bulk of the work");
    });
}
