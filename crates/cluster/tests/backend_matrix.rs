//! The backend-equivalence matrix, kept in the fast test loop
//! (`cargo test --workspace --exclude lumen`): one fixed-seed scenario
//! executed by every physics-running backend must produce bit-identical
//! tallies — the paper's "same results on one core or a cluster" claim,
//! asserted at the bit level, small enough to run in seconds.

use lumen_cluster::{BackendExt, FailurePlan, SimulatedCluster, Tcp, ThreadedCluster};
use lumen_core::engine::{Backend, Progress, Rayon, Scenario, Sequential};
use lumen_core::{Detector, Source, Vec3};
use lumen_tissue::presets::{head_with_inclusion, semi_infinite_phantom, AdultHeadConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

fn scenario() -> Scenario {
    Scenario::new(
        semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
        Source::Delta,
        Detector::new(1.0, 0.5),
    )
    .with_photons(4_000)
    .with_tasks(8)
    .with_seed(2006)
}

/// A voxel scenario small enough for the fast loop but heterogeneous
/// enough (6-material palette, off-axis inclusion) to exercise the DDA.
/// The detector aperture (x ∈ [3, 5]) lies well inside the ±8 mm grid so
/// the detection/tally-merge path is genuinely exercised.
fn voxel_scenario() -> Scenario {
    let grid = head_with_inclusion(
        AdultHeadConfig::default(),
        1.0,
        8.0,
        25.0,
        Vec3::new(5.0, 0.0, 16.0),
        4.0,
    )
    .expect("inclusion phantom builds");
    Scenario::new(grid, Source::Delta, Detector::new(4.0, 1.0))
        .with_photons(2_000)
        .with_tasks(8)
        .with_seed(2006)
}

#[test]
fn matrix_sequential_rayon_threaded_bit_identical() {
    let s = scenario();
    let matrix: Vec<Box<dyn Backend>> = vec![
        Box::new(Sequential),
        Box::new(Rayon::default()),
        Box::new(Rayon::with_threads(1)),
        Box::new(Rayon::with_threads(3)),
        Box::new(ThreadedCluster::new(1)),
        Box::new(ThreadedCluster::new(4)),
        Box::new(ThreadedCluster::new(4).with_failure_plan(FailurePlan::Random { rate: 0.25 })),
    ];
    let reference = matrix[0].run(&s).expect("valid scenario");
    assert_eq!(reference.launched(), 4_000);
    for backend in &matrix[1..] {
        let report = backend.run(&s).expect("valid scenario");
        assert_eq!(
            reference.result.tally,
            report.result.tally,
            "`{}` must match `sequential` bit-for-bit",
            backend.name()
        );
    }
}

#[test]
fn matrix_includes_tcp() {
    // The TCP deployment runs the same batches over real sockets.
    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = probe.local_addr().unwrap().to_string();
    drop(probe);

    let s = scenario();
    let sim = s.simulation();
    let (addr_c, seed) = (addr.clone(), s.seed);
    let clients: Vec<_> = (0..2)
        .map(|_| {
            let sim = sim.clone();
            let addr = addr_c.clone();
            thread::spawn(move || {
                for _ in 0..200 {
                    match lumen_cluster::run_client(&addr, &sim, seed) {
                        Ok(n) => return n,
                        Err(_) => thread::sleep(std::time::Duration::from_millis(10)),
                    }
                }
                panic!("client never connected")
            })
        })
        .collect();

    let tcp = Tcp::new(addr).with_clients(2).run(&s).expect("valid scenario");
    let completed: u64 = clients.into_iter().map(|c| c.join().expect("join")).sum();
    assert_eq!(completed, 8);

    let reference = Sequential.run(&s).expect("valid scenario");
    assert_eq!(tcp.result.tally, reference.result.tally, "tcp must match sequential");
}

#[test]
fn matrix_voxel_scenario_bit_identical_across_backends() {
    // The five-backend claim extended to voxel geometry: every
    // physics-running backend produces the same bits.
    let s = voxel_scenario();
    let matrix: Vec<Box<dyn Backend>> = vec![
        Box::new(Sequential),
        Box::new(Rayon::default()),
        Box::new(Rayon::with_threads(2)),
        Box::new(ThreadedCluster::new(3)),
        Box::new(ThreadedCluster::new(3).with_failure_plan(FailurePlan::Random { rate: 0.25 })),
    ];
    let reference = matrix[0].run(&s).expect("valid voxel scenario");
    assert_eq!(reference.launched(), 2_000);
    assert!(reference.result.tally.total_absorbed() > 0.0);
    assert!(
        reference.result.tally.detected > 0,
        "the voxel matrix must exercise the detection path, not just absorption"
    );
    for backend in &matrix[1..] {
        let report = backend.run(&s).expect("valid voxel scenario");
        assert_eq!(
            reference.result.tally,
            report.result.tally,
            "`{}` must match `sequential` bit-for-bit on voxel geometry",
            backend.name()
        );
    }
    // The DES backend runs the same scenario virtually (no transport).
    let sim = s.run_simulated(lumen_cluster::homogeneous_pool(4)).expect("valid");
    assert!(sim.is_virtual());
    assert_eq!(sim.workers.iter().map(|w| w.photons).sum::<u64>(), 2_000);
}

#[test]
fn matrix_voxel_scenario_over_tcp() {
    // Real sockets under a voxel scenario: tasks out, per-region voxel
    // tallies back (the scenario encoding itself is covered in wire.rs).
    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = probe.local_addr().unwrap().to_string();
    drop(probe);

    let s = voxel_scenario();
    let sim = s.simulation();
    let (addr_c, seed) = (addr.clone(), s.seed);
    let client = {
        let sim = sim.clone();
        thread::spawn(move || {
            for _ in 0..200 {
                match lumen_cluster::run_client(&addr_c, &sim, seed) {
                    Ok(n) => return n,
                    Err(_) => thread::sleep(std::time::Duration::from_millis(10)),
                }
            }
            panic!("client never connected")
        })
    };

    let tcp = Tcp::new(addr).with_clients(1).run(&s).expect("valid voxel scenario");
    assert_eq!(client.join().expect("join"), 8);

    let reference = Sequential.run(&s).expect("valid voxel scenario");
    assert_eq!(tcp.result.tally, reference.result.tally, "tcp must match sequential on voxels");
}

#[test]
fn progress_hook_reports_photons_and_retries() {
    struct Observer {
        photons: AtomicU64,
        retries: AtomicU64,
    }
    impl Progress for Observer {
        fn on_photons(&self, completed: u64, total: u64) {
            assert!(completed <= total);
            self.photons.fetch_max(completed, Ordering::Relaxed);
        }
        fn on_task_retry(&self, _task_id: u64) {
            self.retries.fetch_add(1, Ordering::Relaxed);
        }
    }
    let obs = Observer { photons: AtomicU64::new(0), retries: AtomicU64::new(0) };
    // 32 tasks at a 50% failure rate: P(zero requeues) = 0.5^32 ≈ 2e-10,
    // so the requeues > 0 assertion cannot flake on an unlucky schedule.
    let report = ThreadedCluster::new(3)
        .with_failure_plan(FailurePlan::Random { rate: 0.5 })
        .run_with_progress(&scenario().with_tasks(32), &obs)
        .expect("valid scenario");
    assert_eq!(obs.photons.load(Ordering::Relaxed), 4_000, "all completions observed");
    assert_eq!(obs.retries.load(Ordering::Relaxed), report.requeues, "retries observed live");
    assert!(report.requeues > 0, "50% failure rate over 32 tasks must requeue");
}

#[test]
fn simulated_backend_predicts_without_transport() {
    // `sim` deliberately sits outside the bit-identical matrix: it models
    // time. Same scenario, zero photons traced, a virtual makespan out.
    let report = scenario().run_simulated(lumen_cluster::homogeneous_pool(10)).expect("valid");
    assert!(report.is_virtual());
    assert_eq!(report.result.launched(), 0);
    assert!(report.virtual_seconds.unwrap() > 0.0);
    let accounted: u64 = report.workers.iter().map(|w| w.photons).sum();
    assert_eq!(accounted, 4_000, "the DES still accounts for every photon");
    let _ = SimulatedCluster::new(1); // constructor stays in the public API
}
