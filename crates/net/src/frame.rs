//! The shared frame layer: 4-byte little-endian length, one kind byte,
//! payload — the exact bytes `lumen_cluster::net::read_frame` has spoken
//! since wire v3, factored here so the poll loop's incremental decoder
//! and the blocking helpers can never drift apart.

/// Largest accepted frame (64 MiB) — a 50³ grid of f64 is ~1 MB, so this
/// leaves ample headroom while bounding a hostile length prefix.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Frame-layer violations (distinct from transport I/O errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// An outgoing payload would exceed [`MAX_FRAME`].
    TooLong(usize),
    /// An incoming length prefix outside `(0, MAX_FRAME]`.
    BadLength(u32),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLong(n) => write!(f, "payload of {n} bytes exceeds the frame cap"),
            FrameError::BadLength(n) => write!(f, "bad frame length {n}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Append one encoded frame to `out` as a single contiguous byte run, so
/// one `write` syscall (and, with `TCP_NODELAY`, at most one packet) can
/// carry the whole frame.
pub fn encode_frame_into(out: &mut Vec<u8>, kind: u8, payload: &[u8]) -> Result<(), FrameError> {
    let len = 1 + payload.len();
    if len as u64 > MAX_FRAME as u64 {
        return Err(FrameError::TooLong(payload.len()));
    }
    out.reserve(4 + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.push(kind);
    out.extend_from_slice(payload);
    Ok(())
}

/// One encoded frame as a fresh buffer (see [`encode_frame_into`]).
pub fn encode_frame(kind: u8, payload: &[u8]) -> Result<Vec<u8>, FrameError> {
    let mut out = Vec::with_capacity(5 + payload.len());
    encode_frame_into(&mut out, kind, payload)?;
    Ok(out)
}

/// Incremental frame assembly: feed it whatever byte runs the socket
/// yields, pop complete `(kind, payload)` frames as they materialize.
/// A frame split across any number of reads reassembles identically.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes before this offset are already-consumed frames; the buffer
    /// compacts once the dead prefix dominates.
    pos: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame, `Ok(None)` if more bytes are needed.
    /// A hostile length prefix is a [`FrameError`]; the caller should
    /// drop the connection, since the stream can no longer be trusted to
    /// be frame-aligned.
    pub fn next_frame(&mut self) -> Result<Option<(u8, Vec<u8>)>, FrameError> {
        let pending = &self.buf[self.pos..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([pending[0], pending[1], pending[2], pending[3]]);
        if len == 0 || len > MAX_FRAME {
            return Err(FrameError::BadLength(len));
        }
        let total = 4 + len as usize;
        if pending.len() < total {
            return Ok(None);
        }
        let kind = pending[4];
        let payload = pending[5..total].to_vec();
        self.pos += total;
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(Some((kind, payload)))
    }

    /// Is a frame partially assembled (bytes received, frame incomplete)?
    /// The stall guard keys off this: an idle connection is fine, a
    /// connection stuck mid-frame is desynchronized or dying.
    pub fn mid_frame(&self) -> bool {
        self.buf.len() > self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_then_decode_round_trips() {
        let bytes = encode_frame(0x42, b"hello").unwrap();
        assert_eq!(&bytes[..4], &6u32.to_le_bytes());
        assert_eq!(bytes[4], 0x42);
        assert_eq!(&bytes[5..], b"hello");

        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        let (kind, payload) = dec.next_frame().unwrap().expect("one frame");
        assert_eq!((kind, payload.as_slice()), (0x42, b"hello".as_slice()));
        assert!(dec.next_frame().unwrap().is_none());
        assert!(!dec.mid_frame());
    }

    #[test]
    fn byte_at_a_time_delivery_reassembles() {
        let bytes = encode_frame(0x07, &[9u8; 300]).unwrap();
        let mut dec = FrameDecoder::new();
        let mut got = None;
        for (i, b) in bytes.iter().enumerate() {
            dec.extend(std::slice::from_ref(b));
            if i + 1 < bytes.len() {
                assert!(dec.next_frame().unwrap().is_none());
                if i >= 4 {
                    assert!(dec.mid_frame());
                }
            } else {
                got = dec.next_frame().unwrap();
            }
        }
        let (kind, payload) = got.expect("frame completes on the last byte");
        assert_eq!(kind, 0x07);
        assert_eq!(payload, vec![9u8; 300]);
    }

    #[test]
    fn back_to_back_frames_pop_in_order() {
        let mut wire = encode_frame(1, b"a").unwrap();
        wire.extend(encode_frame(2, b"bb").unwrap());
        wire.extend(encode_frame(3, b"").unwrap());
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        assert_eq!(dec.next_frame().unwrap(), Some((1, b"a".to_vec())));
        assert_eq!(dec.next_frame().unwrap(), Some((2, b"bb".to_vec())));
        assert_eq!(dec.next_frame().unwrap(), Some((3, Vec::new())));
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn hostile_lengths_are_rejected() {
        let mut dec = FrameDecoder::new();
        dec.extend(&0u32.to_le_bytes());
        assert_eq!(dec.next_frame(), Err(FrameError::BadLength(0)));

        let mut dec = FrameDecoder::new();
        dec.extend(&u32::MAX.to_le_bytes());
        assert_eq!(dec.next_frame(), Err(FrameError::BadLength(u32::MAX)));

        let huge = vec![0u8; MAX_FRAME as usize + 1];
        assert_eq!(encode_frame(0, &huge), Err(FrameError::TooLong(huge.len())));
    }

    #[test]
    fn long_sessions_compact_the_buffer() {
        let mut dec = FrameDecoder::new();
        for i in 0..200u32 {
            dec.extend(&encode_frame(1, &[0u8; 64]).unwrap());
            let _ = dec.next_frame().unwrap().expect("frame");
            assert!(!dec.mid_frame(), "iteration {i}: decoder must drain fully");
        }
        assert!(dec.buf.len() < 8192, "consumed prefixes must be reclaimed");
    }
}
