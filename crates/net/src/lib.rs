//! # lumen-net — the poll-based multiplexed transport core
//!
//! One thread, one `poll(2)` readiness loop, hundreds of framed TCP
//! connections. Both networked runtimes in the workspace — the cluster
//! DataManager server (`lumen_cluster::net`) and the `lumend` simulation
//! service (`lumen_service::server`) — are handlers plugged into this
//! loop, replacing their original thread-per-connection blocking designs
//! whose per-socket threads and shared lease-table lock capped the pool
//! at a handful of clients.
//!
//! The layering follows the small-state-machine discipline of protocol
//! stacks built as composable kernel modules: each layer owns exactly
//! one concern and exposes a narrow seam.
//!
//! * [`sys`] — a minimal `poll(2)` binding (declared directly; the
//!   offline workspace carries no libc crate).
//! * [`frame`] — the shared frame codec: single-buffer encoding and
//!   incremental, split-tolerant decoding of the
//!   `4-byte LE length | kind | payload` wire format.
//! * [`EventLoop`] + [`Handler`] — the readiness loop: non-blocking
//!   accept, per-connection read/write buffers, frame assembly and
//!   flushing, deadline-driven ticks, and a cross-thread [`Waker`] so
//!   worker threads can hand results back to the loop.
//!
//! Policy stays out of this crate entirely: protocol kinds, handshakes,
//! lease tables, and caches belong to the handlers. The loop guarantees
//! only mechanics — every complete frame is delivered exactly once in
//! arrival order, every connection death is reported exactly once, and
//! no callback ever blocks on a socket.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod frame;
pub mod sys;

use frame::FrameDecoder;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Identifies one live connection within its [`EventLoop`]. Tokens are
/// never reused within a loop's lifetime, so a stale token held across a
/// disconnect simply stops resolving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

impl std::fmt::Display for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "conn#{}", self.0)
    }
}

/// What the loop should do after a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Keep serving.
    Continue,
    /// Exit [`EventLoop::run`] now (remaining connections close when the
    /// loop is dropped).
    Stop,
}

/// The protocol brain driven by an [`EventLoop`]. All callbacks run on
/// the loop thread; none may block. State machines live here — the loop
/// only moves bytes.
pub trait Handler {
    /// A connection was accepted and configured (non-blocking, nodelay).
    /// Connections whose setup fails are closed before ever reaching the
    /// handler — a socket with a broken option set must not be served.
    fn on_open(&mut self, ops: &mut Ops<'_>, token: Token);

    /// One complete frame arrived. Frames are delivered in arrival
    /// order; a handler closing `token` mid-batch drops the rest.
    fn on_frame(&mut self, ops: &mut Ops<'_>, token: Token, kind: u8, payload: Vec<u8>);

    /// The connection died remotely (EOF, I/O error, or a frame-layer
    /// violation). Called exactly once per connection, and never for
    /// closes the handler itself initiated via [`Ops::close`] /
    /// [`Ops::finish`].
    fn on_close(&mut self, ops: &mut Ops<'_>, token: Token);

    /// The [`Waker`] fired (at least once since the last delivery —
    /// wakes coalesce, so drain the whole completion queue).
    fn on_wake(&mut self, _ops: &mut Ops<'_>) {}

    /// Runs once per loop iteration, after I/O. Deadline work (lease
    /// revocation, stall guards, shutdown flags) belongs here.
    fn on_tick(&mut self, ops: &mut Ops<'_>, now: Instant) -> Flow;

    /// The next instant [`Handler::on_tick`] must run even without I/O;
    /// the loop also ticks at least every ~50 ms regardless.
    fn next_wake(&mut self, _now: Instant) -> Option<Instant> {
        None
    }
}

/// Handle worker threads use to interrupt a sleeping [`EventLoop`]
/// (loopback socket pair under the hood — portable, poll-able). Wakes
/// coalesce; [`Waker::wake`] never blocks.
#[derive(Debug)]
pub struct Waker {
    tx: TcpStream,
}

impl Waker {
    /// Signal the loop; its handler's [`Handler::on_wake`] runs on the
    /// next iteration.
    pub fn wake(&self) {
        // Non-blocking: a full buffer means wake bytes are already
        // pending, so dropping this one loses nothing.
        let _ = (&self.tx).write(&[1]);
    }

    /// An independent handle to the same loop.
    pub fn try_clone(&self) -> std::io::Result<Waker> {
        Ok(Waker { tx: self.tx.try_clone()? })
    }
}

/// One connection's loop-side record.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    outbox: Vec<u8>,
    cursor: usize,
    /// Locally initiated teardown: close once the outbox flushes, and
    /// suppress the `on_close` callback (the handler already knows).
    finishing: bool,
    /// A write failed outside the loop's sweep; close (with callback
    /// unless `finishing`) on the next iteration.
    dead: bool,
    /// Last instant bytes arrived (or the accept instant).
    last_read: Instant,
}

impl Conn {
    /// Push buffered bytes to the socket; `Err` only for fatal failures
    /// (`WouldBlock` leaves the remainder for the next readiness event).
    fn flush(&mut self) -> std::io::Result<()> {
        while self.cursor < self.outbox.len() {
            match self.stream.write(&self.outbox[self.cursor..]) {
                Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
                Ok(n) => self.cursor += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.cursor == self.outbox.len() {
            self.outbox.clear();
            self.cursor = 0;
        } else if self.cursor > 64 * 1024 {
            self.outbox.drain(..self.cursor);
            self.cursor = 0;
        }
        Ok(())
    }

    fn has_pending(&self) -> bool {
        self.cursor < self.outbox.len()
    }
}

/// The connection-table view handlers mutate during callbacks: queue
/// frames, close peers, inspect staleness. All operations are
/// non-blocking and tolerate stale tokens (returning `false`/`None`).
#[derive(Debug)]
pub struct Ops<'a> {
    conns: &'a mut HashMap<usize, Conn>,
}

impl Ops<'_> {
    /// Queue one frame on `token` and eagerly flush what the socket will
    /// take. Returns `false` if the token is gone, the connection is
    /// already finishing, or the payload exceeds the frame cap; a
    /// mid-flush socket error marks the connection dead (reported via
    /// [`Handler::on_close`] on the next iteration).
    pub fn send(&mut self, token: Token, kind: u8, payload: &[u8]) -> bool {
        let Some(conn) = self.conns.get_mut(&token.0) else { return false };
        if conn.finishing || conn.dead {
            return false;
        }
        if frame::encode_frame_into(&mut conn.outbox, kind, payload).is_err() {
            return false;
        }
        if conn.flush().is_err() {
            conn.dead = true;
        }
        true
    }

    /// Close `token` now (both directions, no `on_close` callback).
    pub fn close(&mut self, token: Token) {
        if let Some(conn) = self.conns.remove(&token.0) {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
    }

    /// Close `token` once its queued frames have flushed (no `on_close`
    /// callback). Reads are ignored from here on: the connection exists
    /// only to drain its goodbye.
    pub fn finish(&mut self, token: Token) {
        let should_close = match self.conns.get_mut(&token.0) {
            None => return,
            Some(conn) => {
                conn.finishing = true;
                if conn.flush().is_err() {
                    conn.dead = true;
                }
                !conn.has_pending() || conn.dead
            }
        };
        if should_close {
            self.close(token);
        }
    }

    /// Is `token` still in the table?
    pub fn is_open(&self, token: Token) -> bool {
        self.conns.contains_key(&token.0)
    }

    /// Is a frame partially assembled on `token`? (Fuel for stall
    /// guards: idle is fine, stuck mid-frame is not.)
    pub fn mid_frame(&self, token: Token) -> bool {
        self.conns.get(&token.0).is_some_and(|c| c.decoder.mid_frame())
    }

    /// Time since bytes last arrived on `token` (since accept if none
    /// ever did).
    pub fn read_idle(&self, token: Token, now: Instant) -> Option<Duration> {
        self.conns.get(&token.0).map(|c| now.saturating_duration_since(c.last_read))
    }

    /// The peer address, if the token is live and the socket can name it.
    pub fn peer_addr(&self, token: Token) -> Option<SocketAddr> {
        self.conns.get(&token.0).and_then(|c| c.stream.peer_addr().ok())
    }

    /// Live connections (finishing ones included).
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// No live connections?
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }
}

#[cfg(unix)]
fn raw_fd<T: std::os::unix::io::AsRawFd>(t: &T) -> i32 {
    t.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd<T>(_t: &T) -> i32 {
    0
}

/// The loop ticks at least this often even with no I/O and no handler
/// deadline, so coarse conditions (a shutdown flag, say) are observed
/// promptly.
const MAX_TICK: Duration = Duration::from_millis(50);

/// Read-scratch size; reads drain the socket buffer in chunks this big.
const READ_CHUNK: usize = 16 * 1024;

/// The readiness loop: owns the listener, the connection table, and the
/// optional waker, and drives a [`Handler`] until it says [`Flow::Stop`].
#[derive(Debug)]
pub struct EventLoop {
    listener: TcpListener,
    conns: HashMap<usize, Conn>,
    next_token: usize,
    waker_rx: Option<TcpStream>,
    waker_tx: Option<TcpStream>,
}

impl EventLoop {
    /// Take ownership of a bound listener (switched to non-blocking).
    pub fn new(listener: TcpListener) -> std::io::Result<Self> {
        listener.set_nonblocking(true)?;
        Ok(Self { listener, conns: HashMap::new(), next_token: 0, waker_rx: None, waker_tx: None })
    }

    /// The listener's bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A [`Waker`] for this loop. The first call sets up the loopback
    /// wake channel; every call returns an independent handle.
    pub fn waker(&mut self) -> std::io::Result<Waker> {
        if self.waker_tx.is_none() {
            let gate = TcpListener::bind("127.0.0.1:0")?;
            let tx = TcpStream::connect(gate.local_addr()?)?;
            let (rx, _) = gate.accept()?;
            rx.set_nonblocking(true)?;
            tx.set_nonblocking(true)?;
            tx.set_nodelay(true)?;
            self.waker_rx = Some(rx);
            self.waker_tx = Some(tx);
        }
        Ok(Waker { tx: self.waker_tx.as_ref().expect("waker channel").try_clone()? })
    }

    /// Drive `handler` until it returns [`Flow::Stop`]. `Err` only for
    /// unrecoverable loop failures (the listener or poll itself); any
    /// still-open connections close when the `EventLoop` drops.
    pub fn run<H: Handler>(&mut self, handler: &mut H) -> std::io::Result<()> {
        loop {
            self.sweep_dead(handler);

            let now = Instant::now();
            let timeout = handler
                .next_wake(now)
                .map(|at| at.saturating_duration_since(now))
                .unwrap_or(MAX_TICK)
                .min(MAX_TICK);

            // Registration order: listener, waker, then connections in a
            // captured order (the table may mutate during callbacks).
            let mut fds = vec![sys::PollFd::new(raw_fd(&self.listener), sys::POLLIN)];
            if let Some(rx) = &self.waker_rx {
                fds.push(sys::PollFd::new(raw_fd(rx), sys::POLLIN));
            }
            let base = fds.len();
            let order: Vec<usize> = self.conns.keys().copied().collect();
            for &t in &order {
                let conn = &self.conns[&t];
                let mut events = if conn.finishing { 0 } else { sys::POLLIN };
                if conn.has_pending() {
                    events |= sys::POLLOUT;
                }
                fds.push(sys::PollFd::new(raw_fd(&conn.stream), events));
            }

            sys::poll_fds(&mut fds, timeout)?;
            let now = Instant::now();

            if fds[0].ready(sys::POLLIN) {
                self.accept_ready(handler, now);
            }
            if self.waker_rx.is_some() && fds[base - 1].ready(sys::POLLIN) && self.drain_waker() {
                handler.on_wake(&mut Ops { conns: &mut self.conns });
            }

            for (i, &t) in order.iter().enumerate() {
                let ready = fds[base + i];
                if ready.ready(sys::POLLIN) {
                    self.read_ready(handler, t, now);
                }
                if ready.ready(sys::POLLOUT) {
                    self.flush_ready(handler, t);
                }
            }

            match handler.on_tick(&mut Ops { conns: &mut self.conns }, now) {
                Flow::Continue => {}
                Flow::Stop => return Ok(()),
            }
        }
    }

    /// Close connections whose eager flush failed mid-callback,
    /// reporting remote deaths to the handler.
    fn sweep_dead<H: Handler>(&mut self, handler: &mut H) {
        let dead: Vec<usize> = self.conns.iter().filter(|(_, c)| c.dead).map(|(&t, _)| t).collect();
        for t in dead {
            self.close_remote(handler, t);
        }
    }

    /// Remove `t` and fire `on_close` unless the teardown was local.
    fn close_remote<H: Handler>(&mut self, handler: &mut H, t: usize) {
        if let Some(conn) = self.conns.remove(&t) {
            let _ = conn.stream.shutdown(Shutdown::Both);
            if !conn.finishing {
                handler.on_close(&mut Ops { conns: &mut self.conns }, Token(t));
            }
        }
    }

    fn accept_ready<H: Handler>(&mut self, handler: &mut H, now: Instant) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // A connection whose option setup fails is closed on
                    // the spot: serving a socket with (say) a broken
                    // non-blocking flag would hand the loop a stream
                    // that can stall every other client.
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        let _ = stream.shutdown(Shutdown::Both);
                        continue;
                    }
                    let t = self.next_token;
                    self.next_token += 1;
                    self.conns.insert(
                        t,
                        Conn {
                            stream,
                            decoder: FrameDecoder::new(),
                            outbox: Vec::new(),
                            cursor: 0,
                            finishing: false,
                            dead: false,
                            last_read: now,
                        },
                    );
                    handler.on_open(&mut Ops { conns: &mut self.conns }, Token(t));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// True if any wake bytes were pending.
    fn drain_waker(&mut self) -> bool {
        let Some(rx) = &mut self.waker_rx else { return false };
        let mut scratch = [0u8; 256];
        let mut woke = false;
        loop {
            match rx.read(&mut scratch) {
                Ok(0) => break, // waker writer gone; treat as drained
                Ok(_) => woke = true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        woke
    }

    fn read_ready<H: Handler>(&mut self, handler: &mut H, t: usize, now: Instant) {
        let mut gone = false;
        {
            let Some(conn) = self.conns.get_mut(&t) else { return };
            let mut scratch = [0u8; READ_CHUNK];
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        gone = true;
                        break;
                    }
                    Ok(n) => {
                        conn.decoder.extend(&scratch[..n]);
                        conn.last_read = now;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        gone = true;
                        break;
                    }
                }
            }
        }
        // Deliver complete frames one at a time, re-borrowing between
        // callbacks (the handler may close this or any other token).
        loop {
            let frame = match self.conns.get_mut(&t) {
                None => return, // handler closed it mid-batch
                Some(conn) => match conn.decoder.next_frame() {
                    Ok(Some(f)) => f,
                    Ok(None) => break,
                    Err(_) => {
                        // Frame-layer violation: the stream is no longer
                        // frame-aligned; it cannot be served further.
                        self.close_remote(handler, t);
                        return;
                    }
                },
            };
            handler.on_frame(&mut Ops { conns: &mut self.conns }, Token(t), frame.0, frame.1);
        }
        if gone {
            self.close_remote(handler, t);
        }
    }

    fn flush_ready<H: Handler>(&mut self, handler: &mut H, t: usize) {
        let (failed, done) = match self.conns.get_mut(&t) {
            None => return,
            Some(conn) => match conn.flush() {
                Ok(()) => (false, conn.finishing && !conn.has_pending()),
                Err(_) => (true, false),
            },
        };
        if failed {
            self.close_remote(handler, t);
        } else if done {
            // A locally finished connection has drained its goodbye.
            if let Some(conn) = self.conns.remove(&t) {
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    /// Echoes every frame back, closes on kind 0xFF, stops when idle
    /// after having served at least one connection.
    struct Echo {
        served: usize,
        stop_when_empty: bool,
        woke: Arc<AtomicBool>,
    }

    impl Handler for Echo {
        fn on_open(&mut self, _ops: &mut Ops<'_>, _token: Token) {
            self.served += 1;
        }
        fn on_frame(&mut self, ops: &mut Ops<'_>, token: Token, kind: u8, payload: Vec<u8>) {
            if kind == 0xFF {
                ops.close(token);
            } else {
                assert!(ops.send(token, kind, &payload));
            }
        }
        fn on_close(&mut self, _ops: &mut Ops<'_>, _token: Token) {}
        fn on_wake(&mut self, _ops: &mut Ops<'_>) {
            self.woke.store(true, Ordering::Relaxed);
        }
        fn on_tick(&mut self, ops: &mut Ops<'_>, _now: Instant) -> Flow {
            if self.stop_when_empty && self.served > 0 && ops.is_empty() {
                Flow::Stop
            } else {
                Flow::Continue
            }
        }
    }

    fn blocking_frame_roundtrip(stream: &mut TcpStream, kind: u8, payload: &[u8]) -> (u8, Vec<u8>) {
        stream.write_all(&frame::encode_frame(kind, payload).unwrap()).unwrap();
        let mut dec = FrameDecoder::new();
        let mut scratch = [0u8; 4096];
        loop {
            if let Some(f) = dec.next_frame().unwrap() {
                return f;
            }
            let n = stream.read(&mut scratch).unwrap();
            assert!(n > 0, "peer closed mid-frame");
            dec.extend(&scratch[..n]);
        }
    }

    #[test]
    fn echo_serves_many_blocking_clients_from_one_loop() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let woke = Arc::new(AtomicBool::new(false));
        let mut el = EventLoop::new(listener).unwrap();
        let server = {
            let woke = Arc::clone(&woke);
            std::thread::spawn(move || {
                let mut h = Echo { served: 0, stop_when_empty: true, woke };
                el.run(&mut h).unwrap();
                h.served
            })
        };

        let clients: Vec<_> = (0..24u8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut s = TcpStream::connect(addr).unwrap();
                    for round in 0..3u8 {
                        let payload = vec![i; 10 + round as usize];
                        let (kind, echoed) = blocking_frame_roundtrip(&mut s, i, &payload);
                        assert_eq!((kind, echoed), (i, payload));
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        assert_eq!(server.join().unwrap(), 24);
        assert!(!woke.load(Ordering::Relaxed));
    }

    #[test]
    fn waker_interrupts_an_idle_loop() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut el = EventLoop::new(listener).unwrap();
        let waker = el.waker().unwrap();
        let woke = Arc::new(AtomicBool::new(false));

        struct StopOnWake(Arc<AtomicBool>);
        impl Handler for StopOnWake {
            fn on_open(&mut self, _: &mut Ops<'_>, _: Token) {}
            fn on_frame(&mut self, _: &mut Ops<'_>, _: Token, _: u8, _: Vec<u8>) {}
            fn on_close(&mut self, _: &mut Ops<'_>, _: Token) {}
            fn on_wake(&mut self, _: &mut Ops<'_>) {
                self.0.store(true, Ordering::Relaxed);
            }
            fn on_tick(&mut self, _: &mut Ops<'_>, _: Instant) -> Flow {
                if self.0.load(Ordering::Relaxed) {
                    Flow::Stop
                } else {
                    Flow::Continue
                }
            }
        }

        let server = {
            let woke = Arc::clone(&woke);
            std::thread::spawn(move || el.run(&mut StopOnWake(woke)).unwrap())
        };
        std::thread::sleep(Duration::from_millis(30));
        waker.wake();
        server.join().unwrap();
        assert!(woke.load(Ordering::Relaxed));
    }

    #[test]
    fn frame_violation_reports_close_exactly_once() {
        struct Track {
            closes: usize,
            opened: bool,
        }
        impl Handler for Track {
            fn on_open(&mut self, _: &mut Ops<'_>, _: Token) {
                self.opened = true;
            }
            fn on_frame(&mut self, _: &mut Ops<'_>, _: Token, _: u8, _: Vec<u8>) {
                panic!("a zero-length frame must never be delivered");
            }
            fn on_close(&mut self, _: &mut Ops<'_>, _: Token) {
                self.closes += 1;
            }
            fn on_tick(&mut self, ops: &mut Ops<'_>, _: Instant) -> Flow {
                if self.opened && ops.is_empty() {
                    Flow::Stop
                } else {
                    Flow::Continue
                }
            }
        }

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut el = EventLoop::new(listener).unwrap();
        let server = std::thread::spawn(move || {
            let mut h = Track { closes: 0, opened: false };
            el.run(&mut h).unwrap();
            h.closes
        });
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&0u32.to_le_bytes()).unwrap();
        // Keep the socket open: the close must come from the violation,
        // not from EOF.
        assert_eq!(server.join().unwrap(), 1);
        drop(s);
    }

    #[test]
    fn finish_flushes_the_goodbye_before_closing() {
        struct SendAndFinish;
        impl Handler for SendAndFinish {
            fn on_open(&mut self, ops: &mut Ops<'_>, token: Token) {
                let big = vec![7u8; 512 * 1024];
                assert!(ops.send(token, 0x55, &big));
                ops.finish(token);
            }
            fn on_frame(&mut self, _: &mut Ops<'_>, _: Token, _: u8, _: Vec<u8>) {}
            fn on_close(&mut self, _: &mut Ops<'_>, _: Token) {
                panic!("finish() must not fire on_close");
            }
            fn on_tick(&mut self, ops: &mut Ops<'_>, _: Instant) -> Flow {
                if ops.is_empty() {
                    Flow::Stop
                } else {
                    Flow::Continue
                }
            }
        }

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut el = EventLoop::new(listener).unwrap();
        let server = std::thread::spawn(move || el.run(&mut SendAndFinish).unwrap());
        let mut s = TcpStream::connect(addr).unwrap();
        let mut dec = FrameDecoder::new();
        let mut scratch = [0u8; 8192];
        let frame = loop {
            if let Some(f) = dec.next_frame().unwrap() {
                break f;
            }
            let n = s.read(&mut scratch).unwrap();
            assert!(n > 0, "whole frame must arrive before the close");
            dec.extend(&scratch[..n]);
        };
        assert_eq!(frame.0, 0x55);
        assert_eq!(frame.1.len(), 512 * 1024);
        assert_eq!(s.read(&mut scratch).unwrap(), 0, "clean close after the goodbye");
        server.join().unwrap();
    }
}
