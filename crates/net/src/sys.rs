//! Minimal `poll(2)` binding — the only operating-system interface the
//! readiness loop needs.
//!
//! The workspace builds fully offline, so rather than depending on the
//! `libc` crate this module declares the one symbol it uses directly:
//! `poll` is in every libc that `std` already links against on unix. On
//! non-unix targets a sleep-based fallback reports every descriptor
//! ready, which degrades the event loop to a bounded-rate scan of
//! non-blocking sockets — less efficient, still correct, because every
//! read/write path tolerates `WouldBlock`.

use std::time::Duration;

/// Readable-data readiness (input flag, and returned in `revents`).
pub const POLLIN: i16 = 0x001;
/// Writable readiness (output flag, and returned in `revents`).
pub const POLLOUT: i16 = 0x004;
/// Error condition (only ever returned in `revents`).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (only ever returned in `revents`).
pub const POLLHUP: i16 = 0x010;
/// Descriptor not open (only ever returned in `revents`).
pub const POLLNVAL: i16 = 0x020;

/// One descriptor's poll registration, layout-compatible with the C
/// `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The raw descriptor to watch.
    pub fd: i32,
    /// Requested readiness ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Readiness reported back by the kernel.
    pub revents: i16,
}

impl PollFd {
    /// A registration watching `fd` for `events`.
    pub fn new(fd: i32, events: i16) -> Self {
        Self { fd, events, revents: 0 }
    }

    /// Did the kernel report any of `mask` (or an error/hangup, which
    /// always counts as actionable — the subsequent read surfaces it)?
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & (mask | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

/// Block until at least one registered descriptor is ready or `timeout`
/// expires. Returns the number of ready descriptors (0 on timeout).
/// `EINTR` is reported as a timeout so callers simply re-run their loop.
#[cfg(unix)]
pub fn poll_fds(fds: &mut [PollFd], timeout: Duration) -> std::io::Result<usize> {
    use std::os::raw::{c_int, c_ulong};
    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }
    // Round sub-millisecond timeouts up so a short deadline sleeps
    // instead of spinning; cap at i32::MAX ms (~24 days) for the FFI.
    let millis = timeout.as_micros().div_ceil(1000).min(c_int::MAX as u128) as c_int;
    for fd in fds.iter_mut() {
        fd.revents = 0;
    }
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, millis) };
    if rc >= 0 {
        return Ok(rc as usize);
    }
    let err = std::io::Error::last_os_error();
    if err.kind() == std::io::ErrorKind::Interrupted {
        Ok(0)
    } else {
        Err(err)
    }
}

/// Fallback scan: sleep briefly and report everything ready, degrading
/// the loop to a bounded-rate poll of non-blocking sockets.
#[cfg(not(unix))]
pub fn poll_fds(fds: &mut [PollFd], timeout: Duration) -> std::io::Result<usize> {
    std::thread::sleep(timeout.min(Duration::from_millis(2)));
    for fd in fds.iter_mut() {
        fd.revents = fd.events;
    }
    Ok(fds.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    #[cfg(unix)]
    use std::os::unix::io::AsRawFd;

    #[test]
    #[cfg(unix)]
    fn poll_times_out_on_idle_socket_and_wakes_on_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();

        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Duration::from_millis(10)).unwrap();
        assert_eq!(n, 0, "no data yet: poll must time out");
        assert!(!fds[0].ready(POLLIN));

        client.write_all(b"x").unwrap();
        let n = poll_fds(&mut fds, Duration::from_secs(5)).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].ready(POLLIN));
    }
}
