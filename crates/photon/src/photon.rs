//! The photon-packet state threaded through the simulation loop.
//!
//! Following the variance-reduced scheme, a "photon" is really a packet
//! carrying a statistical weight that is attenuated at each interaction
//! instead of the packet being absorbed outright.

use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Why a photon's random walk ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fate {
    /// Still propagating.
    Alive,
    /// Crossed the top surface (z = 0) back into the ambient medium and
    /// passed through the detector aperture — "save path and end".
    Detected,
    /// Escaped through the top surface outside the detector (diffuse
    /// reflectance) or was specularly reflected at launch.
    ReflectedOut,
    /// Escaped through the bottom surface (diffuse transmittance).
    Transmitted,
    /// Lost the Russian-roulette survival draw.
    RouletteKilled,
    /// Weight reached exactly zero (fully absorbed; only possible in pure
    /// absorbers where the single-scattering albedo is 0).
    Absorbed,
    /// Exceeded the configured interaction budget (safety valve, counted
    /// separately so it can be asserted to be rare).
    Expired,
}

impl Fate {
    /// True if the walk is over.
    #[inline]
    pub fn terminal(self) -> bool {
        self != Fate::Alive
    }
}

/// A photon packet: position, direction, weight, and trip bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Photon {
    /// Position (mm). Tissue occupies z ≥ 0; the surface is z = 0.
    pub pos: Vec3,
    /// Unit direction of travel.
    pub dir: Vec3,
    /// Statistical weight in [0, 1].
    pub weight: f64,
    /// Total geometric pathlength travelled inside the tissue (mm). This is
    /// the quantity gated by the paper's "gated differential pathlengths".
    pub pathlength: f64,
    /// Index of the tissue layer currently containing the photon.
    pub layer: usize,
    /// Number of scattering events so far.
    pub scatters: u32,
    /// Deepest z reached (mm) — used for penetration-depth statistics.
    pub max_depth: f64,
    /// Current fate; `Alive` while propagating.
    pub fate: Fate,
}

impl Photon {
    /// A fresh photon of unit weight at `pos` travelling along `dir`
    /// inside layer `layer`.
    pub fn launch(pos: Vec3, dir: Vec3, layer: usize) -> Self {
        debug_assert!(dir.is_unit(1e-6), "launch direction must be unit");
        Self {
            pos,
            dir,
            weight: 1.0,
            pathlength: 0.0,
            layer,
            scatters: 0,
            max_depth: pos.z.max(0.0),
            fate: Fate::Alive,
        }
    }

    /// True while the photon continues its random walk — the paper's
    /// `while (photon survived)` condition.
    #[inline]
    pub fn survived(&self) -> bool {
        self.fate == Fate::Alive
    }

    /// Advance the photon `distance` mm along its current direction,
    /// accruing pathlength and the depth high-water mark.
    #[inline]
    pub fn advance(&mut self, distance: f64) {
        debug_assert!(distance >= 0.0);
        self.pos += self.dir * distance;
        self.pathlength += distance;
        if self.pos.z > self.max_depth {
            self.max_depth = self.pos.z;
        }
    }

    /// Deposit the absorbed fraction `μa/μt` of the current weight
    /// ("update absorption and photon weight" in the paper's Fig. 1)
    /// and return the amount deposited, for the caller to tally.
    #[inline]
    pub fn absorb(&mut self, mu_a: f64, mu_t: f64) -> f64 {
        debug_assert!(mu_t > 0.0);
        self.absorb_fraction(mu_a / mu_t)
    }

    /// [`Self::absorb`] with the fraction `μa/μt` already computed — what
    /// the engine calls with `DerivedOptics::absorb_frac`, saving the
    /// division per interaction. Bit-identical to `absorb(mu_a, mu_t)`
    /// when `frac == mu_a / mu_t`.
    #[inline]
    pub fn absorb_fraction(&mut self, frac: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&frac));
        let deposited = self.weight * frac;
        self.weight -= deposited;
        deposited
    }

    /// Terminate the photon with the given fate.
    #[inline]
    pub fn terminate(&mut self, fate: Fate) {
        debug_assert!(fate.terminal());
        self.fate = fate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn photon() -> Photon {
        Photon::launch(Vec3::ZERO, Vec3::PLUS_Z, 0)
    }

    #[test]
    fn launch_state() {
        let p = photon();
        assert_eq!(p.weight, 1.0);
        assert_eq!(p.pathlength, 0.0);
        assert!(p.survived());
        assert_eq!(p.scatters, 0);
    }

    #[test]
    fn advance_accrues_path_and_depth() {
        let mut p = photon();
        p.advance(2.0);
        assert_eq!(p.pos.z, 2.0);
        assert_eq!(p.pathlength, 2.0);
        assert_eq!(p.max_depth, 2.0);
        // Turn around; depth high-water mark must not decrease.
        p.dir = -Vec3::PLUS_Z;
        p.advance(1.5);
        assert!((p.pos.z - 0.5).abs() < 1e-12);
        assert_eq!(p.pathlength, 3.5);
        assert_eq!(p.max_depth, 2.0);
    }

    #[test]
    fn absorb_conserves_weight() {
        let mut p = photon();
        let deposited = p.absorb(0.5, 2.0);
        assert!((deposited - 0.25).abs() < 1e-12);
        assert!((p.weight - 0.75).abs() < 1e-12);
        // Weight + deposits always equals the original weight.
        let d2 = p.absorb(0.5, 2.0);
        assert!((p.weight + deposited + d2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fate_transitions() {
        let mut p = photon();
        assert!(!p.fate.terminal());
        p.terminate(Fate::Detected);
        assert!(!p.survived());
        assert!(p.fate.terminal());
    }
}
