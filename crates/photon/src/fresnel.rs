//! Boundary physics: Fresnel reflection and Snell refraction at planar
//! interfaces between media of differing refractive index.
//!
//! The paper's feature list offers "refraction and internal reflection
//! (classical physics or probabilistic methods)". Both are implemented:
//!
//! * [`BoundaryMode::Probabilistic`] — the MCML approach: compute the
//!   unpolarised Fresnel reflectance `R(θi)` and reflect the *whole* packet
//!   with probability `R`, otherwise transmit the whole packet. Unbiased,
//!   one random draw.
//! * [`BoundaryMode::Classical`] — deterministic partial reflection: the
//!   packet always refracts, carrying weight `(1 − R) w`, while `R w` is
//!   returned to the caller to continue as a reflected packet or be tallied.
//!   Lower variance near the surface at the cost of more bookkeeping; the
//!   engine tallies the reflected fraction rather than splitting packets.
//!
//! Total internal reflection (`θi` beyond the critical angle when passing
//! into a rarer medium) reflects with probability 1 in both modes.

use crate::vec3::{Axis, Vec3};
use mcrng::McRng;
use serde::{Deserialize, Serialize};

/// How boundary interactions are resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BoundaryMode {
    /// All-or-nothing reflection with probability `R` (MCML default).
    #[default]
    Probabilistic,
    /// Deterministic weight splitting: transmit `(1−R) w`, return `R w`.
    Classical,
}

/// Result of presenting a photon direction to an interface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundaryOutcome {
    /// Packet continues in the incident medium with the given direction
    /// (specular or total internal reflection). `weight_factor` is 1 in
    /// probabilistic mode; in classical mode it is the reflected fraction.
    Reflected { dir: Vec3, weight_factor: f64 },
    /// Packet crosses into the next medium along `dir` (bent by Snell's
    /// law). `weight_factor` is 1 in probabilistic mode and `1 − R` in
    /// classical mode.
    Transmitted { dir: Vec3, weight_factor: f64 },
}

/// Unpolarised Fresnel reflectance for incidence cosine `cos_i` (≥ 0)
/// passing from index `n_i` to `n_t`.
///
/// Returns 1.0 beyond the critical angle. Handles normal incidence and
/// grazing incidence limits explicitly.
#[inline]
pub fn fresnel_reflectance(n_i: f64, n_t: f64, cos_i: f64) -> f64 {
    debug_assert!((0.0..=1.0 + 1e-9).contains(&cos_i));
    let cos_i = cos_i.min(1.0);

    if (n_i - n_t).abs() < 1e-12 {
        return 0.0; // matched media: no interface
    }
    if cos_i > 1.0 - 1e-12 {
        // Normal incidence.
        let r = (n_i - n_t) / (n_i + n_t);
        return r * r;
    }
    if cos_i < 1e-9 {
        return 1.0; // grazing incidence
    }

    let sin_i = (1.0 - cos_i * cos_i).sqrt();
    let sin_t = n_i / n_t * sin_i;
    if sin_t >= 1.0 {
        return 1.0; // total internal reflection
    }
    let cos_t = (1.0 - sin_t * sin_t).sqrt();

    // Average of s- and p-polarised reflectances (Hecht form).
    let rs = (n_i * cos_i - n_t * cos_t) / (n_i * cos_i + n_t * cos_t);
    let rp = (n_i * cos_t - n_t * cos_i) / (n_i * cos_t + n_t * cos_i);
    0.5 * (rs * rs + rp * rp)
}

/// Critical angle cosine for passing from `n_i` into a rarer `n_t`
/// (`None` when `n_t >= n_i`, i.e. no total internal reflection exists).
///
/// A photon whose |direction·normal| is *below* this cosine (angle larger
/// than critical) is totally internally reflected — the paper's
/// `if (photon angle > critical angle) internally reflect` branch.
#[inline]
pub fn critical_cos(n_i: f64, n_t: f64) -> Option<f64> {
    if n_t >= n_i {
        None
    } else {
        let s = n_t / n_i;
        Some((1.0 - s * s).sqrt())
    }
}

/// Resolve an encounter with a horizontal interface whose outward normal is
/// ±z. `dir` is the incident unit direction, `n_i`/`n_t` the indices on the
/// incident/transmission sides.
///
/// The interface is horizontal (layered geometry), so reflection flips
/// `dir.z` and refraction rescales the tangential components by Snell's law.
/// Voxelized geometries present x/y-normal faces too — see
/// [`interact_with_boundary_axis`], of which this is the `Axis::Z` case.
pub fn interact_with_boundary<R: McRng>(
    dir: Vec3,
    n_i: f64,
    n_t: f64,
    mode: BoundaryMode,
    rng: &mut R,
) -> BoundaryOutcome {
    interact_with_boundary_axis(dir, Axis::Z, n_i, n_t, mode, rng)
}

/// Resolve an encounter with an axis-aligned interface whose outward normal
/// is the given [`Axis`]. Reflection flips the normal component; refraction
/// rescales the two tangential components by Snell's law.
#[inline]
pub fn interact_with_boundary_axis<R: McRng>(
    dir: Vec3,
    axis: Axis,
    n_i: f64,
    n_t: f64,
    mode: BoundaryMode,
    rng: &mut R,
) -> BoundaryOutcome {
    let normal = dir.component(axis);
    let cos_i = normal.abs();
    let reflectance = fresnel_reflectance(n_i, n_t, cos_i);

    let reflected_dir = dir.reflect(axis);
    let transmitted_dir = || -> Vec3 {
        if (n_i - n_t).abs() < 1e-12 {
            return dir;
        }
        let ratio = n_i / n_t;
        let sin_t2 = ratio * ratio * (1.0 - cos_i * cos_i);
        let cos_t = (1.0 - sin_t2).max(0.0).sqrt();
        (dir * ratio).with_component(axis, cos_t * normal.signum()).renormalize()
    };

    if reflectance >= 1.0 {
        // Total internal reflection: identical in both modes.
        return BoundaryOutcome::Reflected { dir: reflected_dir, weight_factor: 1.0 };
    }

    match mode {
        BoundaryMode::Probabilistic => {
            if rng.next_f64() < reflectance {
                BoundaryOutcome::Reflected { dir: reflected_dir, weight_factor: 1.0 }
            } else {
                BoundaryOutcome::Transmitted { dir: transmitted_dir(), weight_factor: 1.0 }
            }
        }
        BoundaryMode::Classical => BoundaryOutcome::Transmitted {
            dir: transmitted_dir(),
            weight_factor: 1.0 - reflectance,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcrng::Xoshiro256PlusPlus;
    use proptest::prelude::*;

    #[test]
    fn matched_media_do_not_reflect() {
        assert_eq!(fresnel_reflectance(1.4, 1.4, 0.5), 0.0);
    }

    #[test]
    fn normal_incidence_air_tissue() {
        // R = ((1-1.4)/(1+1.4))^2 = (0.4/2.4)^2 ≈ 0.02778
        let r = fresnel_reflectance(1.0, 1.4, 1.0);
        assert!((r - (0.4f64 / 2.4).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn grazing_incidence_reflects_fully() {
        assert!((fresnel_reflectance(1.0, 1.4, 0.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn total_internal_reflection_beyond_critical() {
        // n=1.4 -> 1.0: critical angle sin = 1/1.4, cos_c ≈ 0.7.
        let cos_c = critical_cos(1.4, 1.0).unwrap();
        assert!((cos_c - (1.0 - (1.0f64 / 1.4).powi(2)).sqrt()).abs() < 1e-12);
        // Slightly more grazing than critical => R = 1.
        assert_eq!(fresnel_reflectance(1.4, 1.0, cos_c * 0.9), 1.0);
        // Slightly steeper than critical => R < 1.
        assert!(fresnel_reflectance(1.4, 1.0, cos_c * 1.1) < 1.0);
    }

    #[test]
    fn no_critical_angle_into_denser_medium() {
        assert!(critical_cos(1.0, 1.4).is_none());
    }

    #[test]
    fn reflectance_is_symmetric_in_energy() {
        // Stokes relations: R(n1->n2, θ1) == R(n2->n1, θ2) with Snell-linked
        // angles.
        let n1 = 1.0;
        let n2 = 1.4;
        let cos1: f64 = 0.8;
        let sin1 = (1.0 - cos1 * cos1).sqrt();
        let sin2 = n1 / n2 * sin1;
        let cos2 = (1.0 - sin2 * sin2).sqrt();
        let r12 = fresnel_reflectance(n1, n2, cos1);
        let r21 = fresnel_reflectance(n2, n1, cos2);
        assert!((r12 - r21).abs() < 1e-9, "{r12} vs {r21}");
    }

    #[test]
    fn snell_law_holds_for_transmission() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        let dir = Vec3::new(0.6, 0.0, 0.8);
        // Classical mode always transmits (below TIR), so we can inspect it.
        match interact_with_boundary(dir, 1.0, 1.4, BoundaryMode::Classical, &mut rng) {
            BoundaryOutcome::Transmitted { dir: t, .. } => {
                let sin_i = dir.radial();
                let sin_t = t.radial();
                assert!((1.0 * sin_i - 1.4 * sin_t).abs() < 1e-9);
                assert!(t.is_unit(1e-9));
                assert!(t.z > 0.0, "keeps travelling downward");
            }
            other => panic!("expected transmission, got {other:?}"),
        }
    }

    #[test]
    fn classical_mode_splits_energy() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        let dir = Vec3::new(0.6, 0.0, 0.8);
        let r = fresnel_reflectance(1.0, 1.4, 0.8);
        match interact_with_boundary(dir, 1.0, 1.4, BoundaryMode::Classical, &mut rng) {
            BoundaryOutcome::Transmitted { weight_factor, .. } => {
                assert!((weight_factor - (1.0 - r)).abs() < 1e-12);
            }
            other => panic!("expected transmission, got {other:?}"),
        }
    }

    #[test]
    fn probabilistic_mode_reflects_at_fresnel_rate() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let dir = Vec3::new(0.6, 0.0, 0.8);
        let r = fresnel_reflectance(1.0, 1.4, 0.8);
        let n = 200_000;
        let mut reflected = 0usize;
        for _ in 0..n {
            if matches!(
                interact_with_boundary(dir, 1.0, 1.4, BoundaryMode::Probabilistic, &mut rng),
                BoundaryOutcome::Reflected { .. }
            ) {
                reflected += 1;
            }
        }
        let frac = reflected as f64 / n as f64;
        assert!((frac - r).abs() < 0.005, "frac {frac} vs R {r}");
    }

    #[test]
    fn reflection_flips_z_only() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(10);
        // Force TIR so the outcome is deterministic.
        let cos_c = critical_cos(1.4, 1.0).unwrap();
        let sin = (1.0 - (cos_c * 0.5) * (cos_c * 0.5)).sqrt();
        let dir = Vec3::new(sin, 0.0, cos_c * 0.5).renormalize();
        match interact_with_boundary(dir, 1.4, 1.0, BoundaryMode::Probabilistic, &mut rng) {
            BoundaryOutcome::Reflected { dir: rdir, weight_factor } => {
                assert_eq!(weight_factor, 1.0);
                assert!((rdir.x - dir.x).abs() < 1e-12);
                assert!((rdir.y - dir.y).abs() < 1e-12);
                assert!((rdir.z + dir.z).abs() < 1e-12);
            }
            other => panic!("expected TIR, got {other:?}"),
        }
    }

    proptest! {
        #[test]
        fn reflectance_in_unit_interval(
            n_i in 1.0f64..2.0, n_t in 1.0f64..2.0, cos_i in 0.0f64..=1.0
        ) {
            let r = fresnel_reflectance(n_i, n_t, cos_i);
            prop_assert!((0.0..=1.0).contains(&r), "R = {}", r);
        }

        #[test]
        fn outcomes_preserve_unit_directions(
            ux in -1.0f64..1.0, uz in 0.05f64..1.0,
            n_i in 1.0f64..2.0, n_t in 1.0f64..2.0, seed in 0u64..1000
        ) {
            let dir = Vec3::new(ux, 0.3, uz).renormalize();
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
            for mode in [BoundaryMode::Probabilistic, BoundaryMode::Classical] {
                let out = interact_with_boundary(dir, n_i, n_t, mode, &mut rng);
                let d = match out {
                    BoundaryOutcome::Reflected { dir, .. } => dir,
                    BoundaryOutcome::Transmitted { dir, .. } => dir,
                };
                prop_assert!(d.is_unit(1e-9));
            }
        }

        #[test]
        fn classical_weight_factors_conserve_energy(
            uz in 0.05f64..1.0, n_i in 1.0f64..2.0, n_t in 1.0f64..2.0
        ) {
            let dir = Vec3::new((1.0 - uz * uz).sqrt(), 0.0, uz);
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
            let r = fresnel_reflectance(n_i, n_t, uz);
            match interact_with_boundary(dir, n_i, n_t, BoundaryMode::Classical, &mut rng) {
                BoundaryOutcome::Transmitted { weight_factor, .. } => {
                    prop_assert!((weight_factor + r - 1.0).abs() < 1e-9);
                }
                BoundaryOutcome::Reflected { weight_factor, .. } => {
                    // Only TIR reflects in classical mode.
                    prop_assert!((r - 1.0).abs() < 1e-9);
                    prop_assert!((weight_factor - 1.0).abs() < 1e-12);
                }
            }
        }
    }
}
