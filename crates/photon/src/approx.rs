//! Polynomial approximations of the transcendentals on the transport hot path.
//!
//! The scalar tier calls libm `ln` (free-path sampling) and `sin_cos`
//! (azimuthal spin) once per interaction; together they account for roughly
//! 21 ns of the ~55 ns interaction budget measured in `docs/PERFORMANCE.md`.
//! The `Fast` precision tier replaces them with the fixed-degree polynomials
//! below, which are branch-light, have no table lookups, and autovectorize
//! when evaluated across a structure-of-arrays photon batch.
//!
//! Every function documents a **maximum error bound over its stated domain**,
//! and `cargo test -p lumen-photon approx` sweeps dense deterministic grids
//! asserting those bounds against libm. The bounds (≤ 1e-10 relative or
//! absolute, depending on the function) are far below Monte Carlo noise at
//! any feasible photon budget, which is why the `Fast` tier is validated
//! statistically rather than bit-for-bit: the approximations perturb
//! individual trajectories, not the distribution they sample.

use core::f64::consts::{LN_2, LOG2_E, SQRT_2, TAU};

/// Natural logarithm for finite, positive, *normal* `x`.
///
/// Decomposes `x = m · 2^e` with the mantissa folded into `[√½, √2)`, then
/// evaluates `ln m = 2·atanh(s)` with `s = (m−1)/(m+1)` (so `|s| ≤ 0.1716`)
/// as an odd series through `s¹⁵`.
///
/// # Accuracy
///
/// Maximum relative error **< 1e-12** over `[2⁻⁵³, 1)` (the range of RNG
/// uniforms feeding exponential free-path sampling) and over `[2⁻⁶⁰, 2⁶⁰)`
/// generally, verified against libm in this module's tests.
///
/// # Domain
///
/// `x` must be a positive *normal* float: subnormals, zero, infinities and
/// NaN are outside the contract (debug-asserted). Transport never produces
/// them — RNG uniforms from the open interval are at least `2⁻⁵³`.
#[inline]
pub fn fast_ln(x: f64) -> f64 {
    debug_assert!(
        x.is_finite() && x >= f64::MIN_POSITIVE,
        "fast_ln domain is positive normal floats, got {x:e}"
    );
    let bits = x.to_bits();
    let mut exponent = ((bits >> 52) & 0x7ff) as i64 - 1023;
    // Reinterpret the mantissa bits with a zero exponent: m ∈ [1, 2).
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
    // Fold into [√½, √2) so s = (m−1)/(m+1) stays small and ln m is
    // centred on zero.
    if m >= SQRT_2 {
        m *= 0.5;
        exponent += 1;
    }
    let s = (m - 1.0) / (m + 1.0);
    let s2 = s * s;
    // ln m = 2·atanh(s) = 2s·(1 + s²/3 + s⁴/5 + … ); truncation after s¹⁵
    // leaves a relative error below s¹⁶/17 ≤ 4e-14.
    let poly = {
        let mut p = 1.0 / 15.0;
        p = p * s2 + 1.0 / 13.0;
        p = p * s2 + 1.0 / 11.0;
        p = p * s2 + 1.0 / 9.0;
        p = p * s2 + 1.0 / 7.0;
        p = p * s2 + 1.0 / 5.0;
        p = p * s2 + 1.0 / 3.0;
        p * s2 + 1.0
    };
    exponent as f64 * LN_2 + 2.0 * s * poly
}

/// `(sin 2πu, cos 2πu)` for the azimuthal angle drawn from a uniform `u`.
///
/// The spin stage only ever needs the sine/cosine of `2π·u` with `u` a raw
/// RNG uniform, so range reduction is exact: `r = u − round(u) ∈ [−½, ½]`
/// costs one rounding instruction instead of the Payne–Hanek reduction a
/// general `sin_cos` must perform. The reduced angle `x = 2πr ∈ [−π, π]`
/// feeds plain Taylor polynomials (sine through `x²¹`, cosine through
/// `x²²`), evaluated branch-free in `x²`.
///
/// # Accuracy
///
/// Maximum absolute error **< 2e-10** on either component for any finite
/// `u`; the Euclidean norm `√(sin² + cos²)` stays within 4e-10 of 1, so
/// directions renormalised after the spin rotation keep unit length to
/// machine precision.
#[inline]
pub fn sincos_unit(u: f64) -> (f64, f64) {
    debug_assert!(u.is_finite(), "sincos_unit needs a finite turn count, got {u}");
    let r = u - u.round();
    let x = TAU * r;
    let x2 = x * x;
    // sin x = x·P(x²): Taylor through x²¹; |tail| ≤ π²³/23! < 1.1e-11.
    let sin = {
        let mut p = -1.0 / 51_090_942_171_709_440_000.0; // 1/21!
        p = p * x2 + 1.0 / 121_645_100_408_832_000.0; // 1/19!
        p = p * x2 - 1.0 / 355_687_428_096_000.0; // 1/17!
        p = p * x2 + 1.0 / 1_307_674_368_000.0; // 1/15!
        p = p * x2 - 1.0 / 6_227_020_800.0; // 1/13!
        p = p * x2 + 1.0 / 39_916_800.0; // 1/11!
        p = p * x2 - 1.0 / 362_880.0; // 1/9!
        p = p * x2 + 1.0 / 5_040.0; // 1/7!
        p = p * x2 - 1.0 / 120.0; // 1/5!
        p = p * x2 + 1.0 / 6.0; // 1/3!
        (p * x2 - 1.0) * -x
    };
    // cos x = Q(x²): Taylor through x²²; |tail| ≤ π²⁴/24! < 1.5e-12.
    let cos = {
        let mut p = -1.0 / 1_124_000_727_777_607_680_000.0; // 1/22!
        p = p * x2 + 1.0 / 2_432_902_008_176_640_000.0; // 1/20!
        p = p * x2 - 1.0 / 6_402_373_705_728_000.0; // 1/18!
        p = p * x2 + 1.0 / 20_922_789_888_000.0; // 1/16!
        p = p * x2 - 1.0 / 87_178_291_200.0; // 1/14!
        p = p * x2 + 1.0 / 479_001_600.0; // 1/12!
        p = p * x2 - 1.0 / 3_628_800.0; // 1/10!
        p = p * x2 + 1.0 / 40_320.0; // 1/8!
        p = p * x2 - 1.0 / 720.0; // 1/6!
        p = p * x2 + 1.0 / 24.0; // 1/4!
        p = p * x2 - 1.0 / 2.0; // 1/2!
        p * x2 + 1.0
    };
    (sin, cos)
}

/// Natural exponential via the classic `x = k·ln2 + r` split.
///
/// `k = round(x·log₂e)` leaves `|r| ≤ ½·ln2 ≈ 0.3466`; `exp r` is a Taylor
/// polynomial through `r⁹` and the power-of-two scale is applied by direct
/// exponent-bit construction. Rounds out the module so reweighting-style
/// `exp(−μ·L)` evaluations have a vectorizable form symmetrical with
/// [`fast_ln`].
///
/// # Accuracy
///
/// Maximum relative error **< 1e-11** for `|x| ≤ 700`, verified against
/// libm. Inputs beyond ±708 saturate to `+∞` / `0` like libm does.
#[inline]
pub fn fast_exp(x: f64) -> f64 {
    debug_assert!(!x.is_nan(), "fast_exp is undefined for NaN");
    if x > 709.0 {
        return f64::INFINITY;
    }
    if x < -708.0 {
        return 0.0;
    }
    let k = (x * LOG2_E).round();
    // Two-part ln2 keeps the reduced argument accurate: r = x − k·ln2
    // computed in extended effective precision.
    const LN_2_HI: f64 = 6.931_471_803_691_238e-1;
    const LN_2_LO: f64 = 1.908_214_929_270_587_7e-10;
    let r = (x - k * LN_2_HI) - k * LN_2_LO;
    let poly = {
        let mut p = 1.0 / 362_880.0; // 1/9!
        p = p * r + 1.0 / 40_320.0; // 1/8!
        p = p * r + 1.0 / 5_040.0; // 1/7!
        p = p * r + 1.0 / 720.0; // 1/6!
        p = p * r + 1.0 / 120.0; // 1/5!
        p = p * r + 1.0 / 24.0; // 1/4!
        p = p * r + 1.0 / 6.0; // 1/3!
        p = p * r + 0.5; // 1/2!
        p = p * r + 1.0;
        p * r + 1.0
    };
    // 2^k by exponent-bit construction; k ∈ [-1022, 1023] after the clamps.
    let scale = f64::from_bits(((1023 + k as i64) as u64) << 52);
    poly * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense multiplicative sweep of (lo, hi] with `steps` points per octave.
    fn log_sweep(lo: f64, hi: f64, per_octave: u32, mut f: impl FnMut(f64)) {
        let ratio = 2f64.powf(1.0 / per_octave as f64);
        let mut x = lo;
        while x <= hi {
            f(x);
            x *= ratio;
        }
    }

    #[test]
    fn ln_relative_error_bound_on_rng_uniform_range() {
        // The range that actually feeds free-path sampling: (0, 1) uniforms
        // from `next_f64_open`, whose smallest value is 2^-53.
        let mut worst = 0.0f64;
        log_sweep(f64::MIN_POSITIVE, 1.0, 4096, |x| {
            let approx = fast_ln(x);
            let exact = x.ln();
            if exact != 0.0 {
                worst = worst.max(((approx - exact) / exact).abs());
            }
        });
        assert!(worst < 1e-12, "fast_ln worst relative error {worst:e} ≥ 1e-12");
    }

    #[test]
    fn ln_relative_error_bound_on_wide_range() {
        let mut worst = 0.0f64;
        log_sweep(2f64.powi(-60), 2f64.powi(60), 1024, |x| {
            let approx = fast_ln(x);
            let exact = x.ln();
            if exact != 0.0 {
                worst = worst.max(((approx - exact) / exact).abs());
            }
        });
        assert!(worst < 1e-12, "fast_ln worst relative error {worst:e} ≥ 1e-12");
    }

    #[test]
    fn ln_is_exact_at_one_and_near_one_stays_relative() {
        assert_eq!(fast_ln(1.0), 0.0);
        // Near 1, ln x → 0; the atanh-series formulation keeps the error
        // *relative* (it scales with s), so tiny logs are still accurate.
        for k in 1..=1000 {
            let x = 1.0 + k as f64 * 1e-6;
            let exact = x.ln();
            let rel = ((fast_ln(x) - exact) / exact).abs();
            assert!(rel < 1e-12, "x={x}: rel err {rel:e}");
        }
    }

    #[test]
    fn sincos_absolute_error_bound_over_many_turns() {
        let mut worst_sin = 0.0f64;
        let mut worst_cos = 0.0f64;
        let mut worst_norm = 0.0f64;
        // Sweep several turns so range reduction is exercised, at a step
        // that is irrational-ish w.r.t. the period.
        let n = 2_000_000u64;
        for i in 0..n {
            let u = i as f64 * (7.0 / n as f64) - 3.5;
            let (s, c) = sincos_unit(u);
            let (es, ec) = (TAU * u).sin_cos();
            worst_sin = worst_sin.max((s - es).abs());
            worst_cos = worst_cos.max((c - ec).abs());
            worst_norm = worst_norm.max((s * s + c * c - 1.0).abs());
        }
        assert!(worst_sin < 2e-10, "sin abs err {worst_sin:e} ≥ 2e-10");
        assert!(worst_cos < 2e-10, "cos abs err {worst_cos:e} ≥ 2e-10");
        assert!(worst_norm < 4e-10, "norm drift {worst_norm:e} ≥ 4e-10");
    }

    #[test]
    fn sincos_hits_the_quadrant_points() {
        let (s, c) = sincos_unit(0.0);
        assert_eq!((s, c), (0.0, 1.0));
        let (s, c) = sincos_unit(0.5);
        assert!(s.abs() < 2e-10 && (c + 1.0).abs() < 2e-10);
        let (s, c) = sincos_unit(0.25);
        assert!((s - 1.0).abs() < 2e-10 && c.abs() < 2e-10);
        let (s, c) = sincos_unit(0.75);
        assert!((s + 1.0).abs() < 2e-10 && c.abs() < 2e-10);
    }

    #[test]
    fn exp_relative_error_bound() {
        let mut worst = 0.0f64;
        let n = 1_000_000i64;
        for i in -n..=n {
            let x = i as f64 * (700.0 / n as f64);
            let approx = fast_exp(x);
            let exact = x.exp();
            worst = worst.max(((approx - exact) / exact).abs());
        }
        assert!(worst < 1e-11, "fast_exp worst relative error {worst:e} ≥ 1e-11");
        assert_eq!(fast_exp(0.0), 1.0);
        assert_eq!(fast_exp(f64::NEG_INFINITY), 0.0);
        assert_eq!(fast_exp(710.0), f64::INFINITY);
    }

    #[test]
    fn ln_exp_round_trip() {
        for k in 1..=1000 {
            let x = k as f64 * 0.37;
            let rel = ((fast_exp(fast_ln(x)) - x) / x).abs();
            assert!(rel < 1e-11, "round trip at {x}: {rel:e}");
        }
    }
}
