//! Russian roulette: unbiased termination of low-weight photons —
//! the paper's `if (weight too small) survive roulette` step.
//!
//! When a packet's weight drops below a threshold, continuing to track it
//! wastes time for negligible tally contribution, but simply discarding it
//! would bias the simulation (destroy weight). Roulette gives the packet a
//! survival chance `p`; survivors are re-weighted by `1/p` so the expected
//! weight is conserved exactly.

use crate::photon::{Fate, Photon};
use mcrng::McRng;
use serde::{Deserialize, Serialize};

/// Roulette parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouletteConfig {
    /// Weight below which roulette is played.
    pub threshold: f64,
    /// Survival probability `p ∈ (0, 1]`.
    pub survival: f64,
}

impl Default for RouletteConfig {
    fn default() -> Self {
        Self { threshold: crate::WEIGHT_THRESHOLD, survival: crate::ROULETTE_SURVIVAL }
    }
}

impl RouletteConfig {
    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.threshold > 0.0 && self.threshold < 1.0) {
            return Err(format!("roulette threshold must be in (0,1), got {}", self.threshold));
        }
        if !(self.survival > 0.0 && self.survival <= 1.0) {
            return Err(format!("roulette survival must be in (0,1], got {}", self.survival));
        }
        Ok(())
    }
}

/// Play roulette if the photon's weight is below the threshold.
/// Returns `true` if the photon is still alive afterwards.
#[inline]
pub fn roulette<R: McRng>(photon: &mut Photon, cfg: RouletteConfig, rng: &mut R) -> bool {
    if photon.weight >= cfg.threshold {
        return true;
    }
    if rng.next_f64() < cfg.survival {
        photon.weight /= cfg.survival;
        true
    } else {
        photon.weight = 0.0;
        photon.terminate(Fate::RouletteKilled);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::Vec3;
    use mcrng::Xoshiro256PlusPlus;

    fn dim_photon(weight: f64) -> Photon {
        let mut p = Photon::launch(Vec3::ZERO, Vec3::PLUS_Z, 0);
        p.weight = weight;
        p
    }

    #[test]
    fn heavy_photon_is_untouched() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut p = dim_photon(0.5);
        assert!(roulette(&mut p, RouletteConfig::default(), &mut rng));
        assert_eq!(p.weight, 0.5);
        assert!(p.survived());
    }

    #[test]
    fn roulette_conserves_expected_weight() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let cfg = RouletteConfig::default();
        let w0 = 1e-5;
        let n = 500_000;
        let mut total = 0.0;
        let mut survivors = 0usize;
        for _ in 0..n {
            let mut p = dim_photon(w0);
            if roulette(&mut p, cfg, &mut rng) {
                survivors += 1;
                total += p.weight;
            }
        }
        let mean = total / n as f64;
        assert!((mean - w0).abs() < 0.02 * w0, "expected weight {w0}, measured {mean}");
        let survival = survivors as f64 / n as f64;
        assert!((survival - cfg.survival).abs() < 0.01);
    }

    #[test]
    fn killed_photons_have_zero_weight_and_fate() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let cfg = RouletteConfig { threshold: 1e-4, survival: 0.1 };
        // Run until we see a kill.
        let mut saw_kill = false;
        for _ in 0..1000 {
            let mut p = dim_photon(1e-5);
            if !roulette(&mut p, cfg, &mut rng) {
                assert_eq!(p.weight, 0.0);
                assert_eq!(p.fate, Fate::RouletteKilled);
                saw_kill = true;
                break;
            }
        }
        assert!(saw_kill, "no kill in 1000 trials at 90% kill rate");
    }

    #[test]
    fn survivors_are_boosted() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let cfg = RouletteConfig { threshold: 1e-4, survival: 0.25 };
        for _ in 0..1000 {
            let mut p = dim_photon(5e-5);
            if roulette(&mut p, cfg, &mut rng) {
                assert!((p.weight - 2e-4).abs() < 1e-15);
                return;
            }
        }
        panic!("no survivor in 1000 trials at 25% survival");
    }

    #[test]
    fn config_validation() {
        assert!(RouletteConfig::default().validate().is_ok());
        assert!(RouletteConfig { threshold: 0.0, survival: 0.1 }.validate().is_err());
        assert!(RouletteConfig { threshold: 1e-4, survival: 0.0 }.validate().is_err());
        assert!(RouletteConfig { threshold: 1e-4, survival: 1.5 }.validate().is_err());
    }
}
