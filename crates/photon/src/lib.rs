//! # lumen-photon — single-photon transport physics
//!
//! This crate implements the per-photon physics of the variance-reduced
//! Monte Carlo method of Prahl et al. (the paper's reference \[5\]), the same
//! formulation used by MCML and by the reproduced paper's `Algorithm` class:
//!
//! * **hop** — sample an exponential free path and advance the photon,
//!   splitting steps at layer boundaries ([`step`]);
//! * **drop** — deposit a fraction `μa/μt` of the photon weight in the
//!   medium ([`Photon::absorb`]);
//! * **spin** — scatter into a new direction drawn from the
//!   Henyey–Greenstein phase function ([`spin()`](fn@spin));
//! * **boundary** — Fresnel reflection/refraction at refractive-index
//!   mismatches, in both the paper's "classical physics" and
//!   "probabilistic" modes ([`fresnel`]);
//! * **roulette** — unbiased termination of low-weight photons
//!   ([`roulette()`](fn@roulette)).
//!
//! Everything here is geometry-free except for the planar-boundary helpers;
//! the layered-medium bookkeeping lives in `lumen-tissue` and the simulation
//! loop in `lumen-core`.

pub mod approx;
pub mod fresnel;
pub mod optics;
pub mod photon;
pub mod roulette;
pub mod spin;
pub mod step;
pub mod vec3;

pub use fresnel::{
    critical_cos, fresnel_reflectance, interact_with_boundary_axis, BoundaryMode, BoundaryOutcome,
};
pub use optics::{DerivedOptics, OpticalProperties};
pub use photon::{Fate, Photon};
pub use roulette::{roulette, RouletteConfig};
pub use spin::spin;
pub use step::{hop, sample_step_mfps};
pub use vec3::{Axis, Vec3};

/// Weight below which a photon enters Russian roulette (MCML default).
pub const WEIGHT_THRESHOLD: f64 = 1e-4;

/// Default survival chance in roulette (MCML default: 1 in 10).
pub const ROULETTE_SURVIVAL: f64 = 0.1;
