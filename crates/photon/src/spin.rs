//! Spin: update the photon direction after a scattering event.
//!
//! The polar angle comes from the Henyey–Greenstein phase function with the
//! layer's anisotropy `g`; the azimuth is uniform. The new direction is
//! computed with MCML's rotation formulae, including the special case for
//! near-vertical travel where the general formula degenerates.

use crate::photon::Photon;
use mcrng::{henyey_greenstein_cos, uniform_azimuth, McRng};

/// Threshold on |uz| above which the direction-update special case is used.
const NEARLY_VERTICAL: f64 = 1.0 - 1e-12;

/// Scatter `photon` into a new direction sampled from HG(g).
/// Increments the scatter counter and re-normalises the direction to
/// suppress floating-point drift over long walks.
#[inline]
pub fn spin<R: McRng>(photon: &mut Photon, g: f64, rng: &mut R) {
    let cos_t = henyey_greenstein_cos(rng, g);
    let sin_t = (1.0 - cos_t * cos_t).max(0.0).sqrt();
    let (cos_p, sin_p) = uniform_azimuth(rng);

    let d = photon.dir;
    let new_dir = if d.z.abs() > NEARLY_VERTICAL {
        // Travelling (anti)parallel to z: rotate about x/y directly.
        crate::vec3::Vec3::new(sin_t * cos_p, sin_t * sin_p, cos_t * d.z.signum())
    } else {
        let denom = (1.0 - d.z * d.z).sqrt();
        crate::vec3::Vec3::new(
            sin_t * (d.x * d.z * cos_p - d.y * sin_p) / denom + d.x * cos_t,
            sin_t * (d.y * d.z * cos_p + d.x * sin_p) / denom + d.y * cos_t,
            -sin_t * cos_p * denom + d.z * cos_t,
        )
    };

    photon.dir = new_dir.renormalize();
    photon.scatters += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::photon::Photon;
    use crate::vec3::Vec3;
    use mcrng::Xoshiro256PlusPlus;

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(31)
    }

    #[test]
    fn spin_preserves_unit_direction() {
        let mut r = rng();
        for &g in &[0.0, 0.5, 0.9, -0.5] {
            let mut p = Photon::launch(Vec3::ZERO, Vec3::PLUS_Z, 0);
            for _ in 0..1000 {
                spin(&mut p, g, &mut r);
                assert!(p.dir.is_unit(1e-9), "g={g}, dir={:?}", p.dir);
            }
        }
    }

    #[test]
    fn spin_increments_counter() {
        let mut r = rng();
        let mut p = Photon::launch(Vec3::ZERO, Vec3::PLUS_Z, 0);
        spin(&mut p, 0.9, &mut r);
        spin(&mut p, 0.9, &mut r);
        assert_eq!(p.scatters, 2);
    }

    #[test]
    fn mean_deflection_cosine_matches_g() {
        // <d_old · d_new> over many single scatters must equal g.
        let mut r = rng();
        for &g in &[0.0, 0.7, 0.9] {
            let n = 100_000;
            let mut acc = 0.0;
            for _ in 0..n {
                let mut p = Photon::launch(Vec3::ZERO, Vec3::PLUS_Z, 0);
                let before = p.dir;
                spin(&mut p, g, &mut r);
                acc += before.dot(p.dir);
            }
            let mean = acc / n as f64;
            assert!((mean - g).abs() < 0.01, "g={g}, mean={mean}");
        }
    }

    #[test]
    fn mean_deflection_correct_from_oblique_directions() {
        // The rotation formula must give <cos theta> = g regardless of the
        // incoming direction.
        let mut r = rng();
        let start = Vec3::new(0.6, 0.48, 0.64).renormalize();
        let g = 0.8;
        let n = 100_000;
        let mut acc = 0.0;
        for _ in 0..n {
            let mut p = Photon::launch(Vec3::ZERO, start, 0);
            spin(&mut p, g, &mut r);
            acc += start.dot(p.dir);
        }
        let mean = acc / n as f64;
        assert!((mean - g).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn isotropic_scatter_covers_both_hemispheres() {
        let mut r = rng();
        let (mut up, mut down) = (0usize, 0usize);
        for _ in 0..10_000 {
            let mut p = Photon::launch(Vec3::ZERO, Vec3::PLUS_Z, 0);
            spin(&mut p, 0.0, &mut r);
            if p.dir.z >= 0.0 {
                up += 1
            } else {
                down += 1
            }
        }
        let frac = up as f64 / (up + down) as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac up = {frac}");
    }

    #[test]
    fn azimuthal_symmetry_from_vertical() {
        let mut r = rng();
        let (mut px, mut py) = (0.0, 0.0);
        let n = 100_000;
        for _ in 0..n {
            let mut p = Photon::launch(Vec3::ZERO, Vec3::PLUS_Z, 0);
            spin(&mut p, 0.9, &mut r);
            px += p.dir.x;
            py += p.dir.y;
        }
        assert!((px / n as f64).abs() < 0.01);
        assert!((py / n as f64).abs() < 0.01);
    }

    #[test]
    fn downward_vertical_special_case() {
        let mut r = rng();
        let mut p = Photon::launch(Vec3::ZERO, -Vec3::PLUS_Z, 0);
        let n = 50_000;
        let mut acc = 0.0;
        let before = p.dir;
        for _ in 0..n {
            let mut q = p;
            spin(&mut q, 0.9, &mut r);
            acc += before.dot(q.dir);
            assert!(q.dir.is_unit(1e-9));
        }
        let mean = acc / n as f64;
        assert!((mean - 0.9).abs() < 0.01, "mean={mean}");
        let _ = &mut p; // silence unused-mut on some toolchains
    }
}
