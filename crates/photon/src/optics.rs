//! Optical properties of a homogeneous medium.
//!
//! Units follow the paper's Table 1: coefficients in mm⁻¹, lengths in mm.
//! The table reports the *transport* (reduced) scattering coefficient
//! `μs' = μs (1 − g)`; [`OpticalProperties::from_reduced_scattering`]
//! recovers `μs` for a chosen anisotropy `g`, which is how the presets in
//! `lumen-tissue` encode Table 1.

use serde::{Deserialize, Serialize};

/// Absorption/scattering description of one homogeneous medium.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpticalProperties {
    /// Absorption coefficient μa (mm⁻¹).
    pub mu_a: f64,
    /// Scattering coefficient μs (mm⁻¹).
    pub mu_s: f64,
    /// Henyey–Greenstein anisotropy factor g ∈ (−1, 1); mean scattering
    /// cosine (g = −1 back-scatter, 0 isotropic, 1 forward — Table 1 note).
    pub g: f64,
    /// Refractive index n.
    pub n: f64,
}

impl OpticalProperties {
    /// Build from directly specified μa, μs, g, n.
    pub fn new(mu_a: f64, mu_s: f64, g: f64, n: f64) -> Self {
        let p = Self { mu_a, mu_s, g, n };
        p.validate().expect("invalid optical properties");
        p
    }

    /// Build from the *reduced* scattering coefficient μs' = μs (1 − g),
    /// the form tabulated in the paper's Table 1.
    pub fn from_reduced_scattering(mu_a: f64, mu_s_prime: f64, g: f64, n: f64) -> Self {
        assert!(g < 1.0, "g = 1 has no finite mu_s for a given mu_s'");
        Self::new(mu_a, mu_s_prime / (1.0 - g), g, n)
    }

    /// A non-scattering, non-absorbing medium with the given index
    /// (e.g. the ambient air above the tissue surface).
    pub fn transparent(n: f64) -> Self {
        Self { mu_a: 0.0, mu_s: 0.0, g: 0.0, n }
    }

    /// Check physical plausibility.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.mu_a >= 0.0 && self.mu_a.is_finite()) {
            return Err(format!("mu_a must be finite and >= 0, got {}", self.mu_a));
        }
        if !(self.mu_s >= 0.0 && self.mu_s.is_finite()) {
            return Err(format!("mu_s must be finite and >= 0, got {}", self.mu_s));
        }
        if !(-1.0..=1.0).contains(&self.g) {
            return Err(format!("g must lie in [-1, 1], got {}", self.g));
        }
        if !(self.n >= 1.0 && self.n.is_finite()) {
            return Err(format!("n must be finite and >= 1, got {}", self.n));
        }
        Ok(())
    }

    /// Total interaction coefficient μt = μa + μs (mm⁻¹).
    #[inline]
    pub fn mu_t(&self) -> f64 {
        self.mu_a + self.mu_s
    }

    /// Reduced scattering coefficient μs' = μs (1 − g) (mm⁻¹).
    #[inline]
    pub fn mu_s_prime(&self) -> f64 {
        self.mu_s * (1.0 - self.g)
    }

    /// Single-scattering albedo μs / μt; fraction of weight surviving each
    /// interaction. 1 for non-absorbing media, 0 for pure absorbers.
    #[inline]
    pub fn albedo(&self) -> f64 {
        let mu_t = self.mu_t();
        if mu_t == 0.0 {
            1.0
        } else {
            self.mu_s / mu_t
        }
    }

    /// Mean free path 1/μt (mm); infinite in transparent media.
    #[inline]
    pub fn mean_free_path(&self) -> f64 {
        let mu_t = self.mu_t();
        if mu_t == 0.0 {
            f64::INFINITY
        } else {
            1.0 / mu_t
        }
    }

    /// True when the medium neither scatters nor absorbs (photons stream
    /// ballistically across it).
    #[inline]
    pub fn is_transparent(&self) -> bool {
        self.mu_t() == 0.0
    }

    /// Precompute the per-interaction constants the transport loop needs.
    pub fn derive(&self) -> DerivedOptics {
        let mu_t = self.mu_t();
        let transparent = mu_t == 0.0;
        DerivedOptics {
            mu_a: self.mu_a,
            mu_s: self.mu_s,
            g: self.g,
            n: self.n,
            mu_t,
            inv_mu_t: if transparent { f64::INFINITY } else { 1.0 / mu_t },
            absorb_frac: if transparent { 0.0 } else { self.mu_a / mu_t },
            albedo: if transparent { 1.0 } else { self.mu_s / mu_t },
            transparent,
        }
    }
}

/// Per-region constants derived once from [`OpticalProperties`], so the
/// photon stepping loop never recomputes a sum or division per interaction.
///
/// Geometries build one entry per region at construction
/// (`TissueGeometry::derived` in `lumen-tissue`) and the engine caches the
/// current region's entry across steps until the photon actually changes
/// region.
///
/// **Bit-identity contract**: every field equals the exact expression the
/// pre-table hot loop evaluated — `mu_t` is the same single addition
/// `mu_a + mu_s`, `absorb_frac` the same division `mu_a / mu_t` that
/// [`Photon::absorb`](crate::Photon::absorb) performed inline — so
/// substituting the table leaves every tally bit-for-bit unchanged (pinned
/// by the golden-tally harness). The hop kernel still divides by `mu_t`
/// rather than multiplying by `inv_mu_t`, because `x / mu_t` and
/// `x * (1/mu_t)` round differently; `inv_mu_t` is for consumers that want
/// the mean free path itself (flops calibration, diffusion estimates).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DerivedOptics {
    /// Absorption coefficient μa (mm⁻¹).
    pub mu_a: f64,
    /// Scattering coefficient μs (mm⁻¹).
    pub mu_s: f64,
    /// Henyey–Greenstein anisotropy factor g.
    pub g: f64,
    /// Refractive index n.
    pub n: f64,
    /// Total interaction coefficient μt = μa + μs (mm⁻¹).
    pub mu_t: f64,
    /// Mean free path 1/μt (mm); infinite for transparent media.
    pub inv_mu_t: f64,
    /// Fraction μa/μt of packet weight deposited per interaction; 0 for
    /// transparent media.
    pub absorb_frac: f64,
    /// Single-scattering albedo μs/μt; 1 for transparent media.
    pub albedo: f64,
    /// True when μt = 0 (photons stream ballistically).
    pub transparent: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn derived_quantities() {
        let p = OpticalProperties::new(0.014, 9.1 / (1.0 - 0.9), 0.9, 1.4);
        assert!((p.mu_s_prime() - 9.1).abs() < 1e-9);
        assert!((p.mu_t() - (0.014 + 91.0)).abs() < 1e-9);
        assert!((p.albedo() - 91.0 / 91.014).abs() < 1e-12);
        assert!((p.mean_free_path() - 1.0 / 91.014).abs() < 1e-12);
    }

    #[test]
    fn from_reduced_scattering_round_trips() {
        let p = OpticalProperties::from_reduced_scattering(0.018, 1.9, 0.9, 1.4);
        assert!((p.mu_s_prime() - 1.9).abs() < 1e-9);
        assert!((p.mu_s - 19.0).abs() < 1e-9);
    }

    #[test]
    fn transparent_medium() {
        let p = OpticalProperties::transparent(1.0);
        assert!(p.is_transparent());
        assert_eq!(p.mean_free_path(), f64::INFINITY);
        assert_eq!(p.albedo(), 1.0);
    }

    #[test]
    fn derived_matches_inline_expressions_bit_for_bit() {
        let p = OpticalProperties::new(0.014, 9.1 / (1.0 - 0.9), 0.9, 1.4);
        let d = p.derive();
        // Exact equality on purpose: the hot loop substitutes these fields
        // for the inline expressions, so they must be the same bits.
        assert_eq!(d.mu_t, p.mu_a + p.mu_s);
        assert_eq!(d.inv_mu_t, 1.0 / p.mu_t());
        assert_eq!(d.absorb_frac, p.mu_a / p.mu_t());
        assert_eq!(d.albedo, p.mu_s / p.mu_t());
        assert_eq!((d.mu_a, d.mu_s, d.g, d.n), (p.mu_a, p.mu_s, p.g, p.n));
        assert!(!d.transparent);

        let t = OpticalProperties::transparent(1.33).derive();
        assert!(t.transparent);
        assert_eq!(t.inv_mu_t, f64::INFINITY);
        assert_eq!(t.absorb_frac, 0.0);
        assert_eq!(t.albedo, 1.0);
    }

    #[test]
    fn validate_rejects_negative_mu_a() {
        let p = OpticalProperties { mu_a: -1.0, mu_s: 1.0, g: 0.0, n: 1.4 };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_g_and_n() {
        let bad_g = OpticalProperties { mu_a: 0.1, mu_s: 1.0, g: 1.5, n: 1.4 };
        assert!(bad_g.validate().is_err());
        let bad_n = OpticalProperties { mu_a: 0.1, mu_s: 1.0, g: 0.0, n: 0.9 };
        assert!(bad_n.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid optical properties")]
    fn new_panics_on_invalid() {
        let _ = OpticalProperties::new(f64::NAN, 1.0, 0.0, 1.4);
    }

    proptest! {
        #[test]
        fn albedo_bounded(mu_a in 0.0f64..10.0, mu_s in 0.0f64..100.0) {
            let p = OpticalProperties { mu_a, mu_s, g: 0.0, n: 1.4 };
            let a = p.albedo();
            prop_assert!((0.0..=1.0).contains(&a));
        }

        #[test]
        fn reduced_scattering_never_exceeds_mu_s(
            mu_s in 0.0f64..100.0, g in 0.0f64..0.999
        ) {
            let p = OpticalProperties { mu_a: 0.01, mu_s, g, n: 1.4 };
            prop_assert!(p.mu_s_prime() <= p.mu_s + 1e-12);
        }
    }
}
