//! Minimal 3-D vector algebra, tailored to transport kernels.
//!
//! `Vec3` is `Copy`, 24 bytes, and all operations are `#[inline]`; photon
//! state updates are the innermost loop of the whole system.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A coordinate axis — the normal direction of an axis-aligned interface.
///
/// The layered geometry only ever presents z-normal boundaries, but voxelized
/// geometries expose x- and y-normal voxel faces to the transport loop, so
/// boundary physics is parameterised by the normal axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Axis {
    X,
    Y,
    /// The depth axis; horizontal interfaces (the layered-tissue case).
    #[default]
    Z,
}

/// A 3-component double-precision vector (position or direction).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// Unit vector along +z — the into-tissue direction for a normally
    /// incident source (tissue occupies z ≥ 0 by convention).
    pub const PLUS_Z: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_squared().sqrt()
    }

    /// Normalised copy; returns `None` for (near-)zero vectors.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-300 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Re-normalise a direction that should already be unit length,
    /// correcting accumulated floating-point drift.
    #[inline]
    pub fn renormalize(self) -> Vec3 {
        self.normalized().unwrap_or(Vec3::PLUS_Z)
    }

    /// True if this is a unit vector to within `tol`.
    #[inline]
    pub fn is_unit(self, tol: f64) -> bool {
        (self.norm_squared() - 1.0).abs() <= tol
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(self, rhs: Vec3) -> f64 {
        (self - rhs).norm()
    }

    /// Component along the given axis.
    #[inline]
    pub fn component(self, axis: Axis) -> f64 {
        match axis {
            Axis::X => self.x,
            Axis::Y => self.y,
            Axis::Z => self.z,
        }
    }

    /// Copy with the given axis component replaced.
    #[inline]
    pub fn with_component(self, axis: Axis, v: f64) -> Vec3 {
        match axis {
            Axis::X => Vec3::new(v, self.y, self.z),
            Axis::Y => Vec3::new(self.x, v, self.z),
            Axis::Z => Vec3::new(self.x, self.y, v),
        }
    }

    /// Copy with the given axis component negated — specular reflection
    /// off an interface whose normal is that axis.
    #[inline]
    pub fn reflect(self, axis: Axis) -> Vec3 {
        self.with_component(axis, -self.component(axis))
    }

    /// Radial distance from the z-axis (source axis), √(x²+y²).
    #[inline]
    pub fn radial(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        self.x += rhs.x;
        self.y += rhs.y;
        self.z += rhs.z;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        self.x -= rhs.x;
        self.y -= rhs.y;
        self.z -= rhs.z;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, -3.0, 9.0));
        assert_eq!(a - b, Vec3::new(-3.0, 7.0, -3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a.dot(b), 4.0 - 10.0 + 18.0);
    }

    #[test]
    fn cross_product_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn normalized_zero_is_none() {
        assert!(Vec3::ZERO.normalized().is_none());
    }

    #[test]
    fn radial_ignores_z() {
        let v = Vec3::new(3.0, 4.0, 99.0);
        assert!((v.radial() - 5.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn normalization_yields_unit_vectors(
            x in -1e3f64..1e3, y in -1e3f64..1e3, z in -1e3f64..1e3
        ) {
            let v = Vec3::new(x, y, z);
            if let Some(u) = v.normalized() {
                prop_assert!(u.is_unit(1e-10));
            }
        }

        #[test]
        fn dot_is_symmetric(
            ax in -10f64..10.0, ay in -10f64..10.0, az in -10f64..10.0,
            bx in -10f64..10.0, by in -10f64..10.0, bz in -10f64..10.0
        ) {
            let a = Vec3::new(ax, ay, az);
            let b = Vec3::new(bx, by, bz);
            prop_assert!((a.dot(b) - b.dot(a)).abs() < 1e-9);
        }

        #[test]
        fn triangle_inequality(
            ax in -10f64..10.0, ay in -10f64..10.0, az in -10f64..10.0,
            bx in -10f64..10.0, by in -10f64..10.0, bz in -10f64..10.0
        ) {
            let a = Vec3::new(ax, ay, az);
            let b = Vec3::new(bx, by, bz);
            prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
        }
    }
}
