//! Hop: free-path sampling and propagation, with boundary splitting.
//!
//! MCML's step rule: sample a dimensionless step `s ~ Exp(1)` in units of
//! mean free paths, convert to a geometric length `s/μt`, and if a layer
//! boundary is closer, move to the boundary and *carry the unspent* portion
//! of the dimensionless step into the next medium. This keeps the free-path
//! distribution correct across interfaces of differing μt.

use crate::photon::Photon;
use mcrng::{sample_exponential, McRng};

/// Sample a fresh dimensionless step length in units of mean free paths.
#[inline]
pub fn sample_step_mfps<R: McRng>(rng: &mut R) -> f64 {
    sample_exponential(rng)
}

/// Outcome of advancing a photon by (part of) a step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Hop {
    /// The full sampled step fit inside the current layer; an interaction
    /// (drop + spin) happens at the new position.
    Interact,
    /// The photon hit the layer boundary at distance `hit` before
    /// exhausting its step; `remaining_mfps` of dimensionless step remain
    /// to be spent in the next medium.
    Boundary { remaining_mfps: f64 },
}

/// Advance `photon` through a medium of interaction coefficient `mu_t`,
/// given `step_mfps` of dimensionless step budget and the distance
/// `boundary_distance` to the nearest layer boundary along the current
/// direction (`f64::INFINITY` if none).
///
/// In a transparent medium (μt = 0) the photon streams ballistically to
/// the boundary and the whole step budget is preserved.
#[inline]
pub fn hop(photon: &mut Photon, step_mfps: f64, mu_t: f64, boundary_distance: f64) -> Hop {
    debug_assert!(step_mfps >= 0.0);
    debug_assert!(boundary_distance >= 0.0);

    if mu_t <= 0.0 {
        // Transparent medium (e.g. clear CSF approximation or ambient):
        // no interactions are possible; stream to the boundary.
        assert!(
            boundary_distance.is_finite(),
            "photon in an unbounded transparent medium would stream forever"
        );
        photon.advance(boundary_distance);
        return Hop::Boundary { remaining_mfps: step_mfps };
    }

    let geometric = step_mfps / mu_t;
    if geometric <= boundary_distance {
        photon.advance(geometric);
        Hop::Interact
    } else {
        photon.advance(boundary_distance);
        let spent = boundary_distance * mu_t;
        Hop::Boundary { remaining_mfps: (step_mfps - spent).max(0.0) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::Vec3;
    use mcrng::Xoshiro256PlusPlus;

    fn photon() -> Photon {
        Photon::launch(Vec3::ZERO, Vec3::PLUS_Z, 0)
    }

    #[test]
    fn full_step_inside_layer_interacts() {
        let mut p = photon();
        let out = hop(&mut p, 1.0, 2.0, f64::INFINITY);
        assert_eq!(out, Hop::Interact);
        assert!((p.pos.z - 0.5).abs() < 1e-12); // 1 mfp / (2 per mm)
        assert!((p.pathlength - 0.5).abs() < 1e-12);
    }

    #[test]
    fn boundary_hit_preserves_unspent_step() {
        let mut p = photon();
        // Step of 1 mfp in a medium with mu_t = 2/mm is 0.5 mm, but the
        // boundary is at 0.2 mm: 0.4 mfp spent, 0.6 mfp carried over.
        let out = hop(&mut p, 1.0, 2.0, 0.2);
        match out {
            Hop::Boundary { remaining_mfps } => {
                assert!((remaining_mfps - 0.6).abs() < 1e-12);
            }
            other => panic!("expected Boundary, got {other:?}"),
        }
        assert!((p.pos.z - 0.2).abs() < 1e-12);
    }

    #[test]
    fn exact_boundary_distance_counts_as_interaction() {
        let mut p = photon();
        let out = hop(&mut p, 1.0, 2.0, 0.5);
        assert_eq!(out, Hop::Interact);
    }

    #[test]
    fn transparent_medium_streams_to_boundary() {
        let mut p = photon();
        let out = hop(&mut p, 0.7, 0.0, 3.0);
        match out {
            Hop::Boundary { remaining_mfps } => assert_eq!(remaining_mfps, 0.7),
            other => panic!("expected Boundary, got {other:?}"),
        }
        assert!((p.pos.z - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unbounded transparent medium")]
    fn transparent_unbounded_panics() {
        let mut p = photon();
        let _ = hop(&mut p, 1.0, 0.0, f64::INFINITY);
    }

    #[test]
    fn step_lengths_have_exponential_mean_free_path() {
        // End-to-end statistical check: mean geometric step = 1/mu_t.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mu_t = 91.0; // white-matter-like
        let n = 100_000;
        let mut total = 0.0;
        for _ in 0..n {
            let mut p = photon();
            let s = sample_step_mfps(&mut rng);
            let _ = hop(&mut p, s, mu_t, f64::INFINITY);
            total += p.pathlength;
        }
        let mean = total / n as f64;
        let expect = 1.0 / mu_t;
        assert!((mean - expect).abs() < 0.02 * expect, "mean {mean} vs expected {expect}");
    }
}
