//! Smoke test of the `lumen` facade: every re-export resolves, and a tiny
//! end-to-end simulation runs deterministically through each execution
//! backend (sequential, rayon-parallel, threaded master/worker).

use lumen::core::{Backend, Detector, Rayon, Scenario, Sequential, Source};
use lumen::tissue::presets::semi_infinite_phantom;

/// One place that names something from every re-exported crate, so a
/// facade regression is a compile error here.
#[test]
fn facade_reexports_resolve() {
    let _rng: lumen::mcrng::Xoshiro256PlusPlus = lumen::mcrng::StreamFactory::new(1).stream(0);
    let _v = lumen::photon::Vec3::new(0.0, 0.0, 1.0);
    let _props = lumen::photon::OpticalProperties::new(0.1, 10.0, 0.9, 1.4);
    let _tissue: lumen::tissue::LayeredTissue = semi_infinite_phantom(0.1, 10.0, 0.0, 1.0);
    let _hist = lumen::analysis::Histogram::new(0.0, 1.0, 10);
    let _backend: lumen::core::Rayon = Rayon::default();
    let _cluster = lumen::cluster::ThreadedCluster::new(2);
    let _plan = lumen::cluster::FailurePlan::Reliable;
    let _err: Option<lumen::core::EngineError> = None;
    let _dcfg = lumen::cluster::executor::DistributedConfig::new(7, 2);
}

fn tiny_scenario() -> Scenario {
    Scenario::new(
        semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
        Source::Delta,
        Detector::new(2.0, 0.5),
    )
    .with_photons(2_000)
    .with_tasks(8)
    .with_seed(42)
}

#[test]
fn fixed_seed_is_deterministic() {
    let s = tiny_scenario();
    let a = Sequential.run(&s).expect("valid scenario");
    let b = Sequential.run(&s).expect("valid scenario");
    assert_eq!(a.result.tally, b.result.tally);
    assert_eq!(a.launched(), 2_000);
    assert!(a.diffuse_reflectance() > 0.0, "scattering half-space must reflect");
}

#[test]
fn execution_backends_agree_bit_for_bit() {
    let s = tiny_scenario().with_photons(4_000).with_seed(11);
    let par = Rayon::default().run(&s).expect("valid scenario");
    let dist = lumen::cluster::ThreadedCluster::new(3).run(&s).expect("valid scenario");
    assert_eq!(par.result.tally, dist.result.tally);
}

/// The seed-era surface still compiles and agrees with the engine; the
/// shims stay until a major version removes them.
#[test]
#[allow(deprecated)]
fn deprecated_shims_still_work() {
    use lumen::core::{run_parallel, ParallelConfig, Simulation};
    let sim = Simulation::new(
        semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
        Source::Delta,
        Detector::new(2.0, 0.5),
    );
    let n = 4_000;
    let old = run_parallel(&sim, n, ParallelConfig { seed: 11, tasks: 8 });
    let old_dist = lumen::cluster::executor::run_distributed(
        &sim,
        n,
        lumen::cluster::executor::DistributedConfig {
            seed: 11,
            tasks: 8,
            workers: 3,
            failure_rate: 0.0,
            task_offset: 0,
        },
    );
    assert_eq!(old.tally, old_dist.result.tally);

    let scenario = Scenario::from_simulation(&sim, n, 11).with_tasks(8);
    let new = Rayon::default().run(&scenario).expect("valid scenario");
    assert_eq!(old.tally, new.result.tally, "shim and engine must agree");
}
