//! Smoke test of the `lumen` facade: every re-export resolves, and a tiny
//! end-to-end simulation runs deterministically through each execution
//! path (sequential, rayon-parallel, threaded master/worker).

use lumen::core::{run_parallel, Detector, ParallelConfig, Simulation, Source};
use lumen::tissue::presets::semi_infinite_phantom;

/// One place that names something from every re-exported crate, so a
/// facade regression is a compile error here.
#[test]
fn facade_reexports_resolve() {
    let _rng: lumen::mcrng::Xoshiro256PlusPlus = lumen::mcrng::StreamFactory::new(1).stream(0);
    let _v = lumen::photon::Vec3::new(0.0, 0.0, 1.0);
    let _props = lumen::photon::OpticalProperties::new(0.1, 10.0, 0.9, 1.4);
    let _tissue: lumen::tissue::LayeredTissue = semi_infinite_phantom(0.1, 10.0, 0.0, 1.0);
    let _cfg: lumen::core::ParallelConfig = ParallelConfig::new(7);
    let _hist = lumen::analysis::Histogram::new(0.0, 1.0, 10);
    let _dcfg = lumen::cluster::executor::DistributedConfig::new(7, 2);
}

fn tiny_sim() -> Simulation {
    Simulation::new(
        semi_infinite_phantom(0.1, 10.0, 0.0, 1.0),
        Source::Delta,
        Detector::new(2.0, 0.5),
    )
}

#[test]
fn fixed_seed_is_deterministic() {
    let sim = tiny_sim();
    let a = sim.run(2_000, 42);
    let b = sim.run(2_000, 42);
    assert_eq!(a.tally, b.tally);
    assert_eq!(a.launched(), 2_000);
    assert!(a.diffuse_reflectance() > 0.0, "scattering half-space must reflect");
}

#[test]
fn execution_paths_agree_bit_for_bit() {
    let sim = tiny_sim();
    let n = 4_000;
    let par = run_parallel(&sim, n, ParallelConfig { seed: 11, tasks: 8 });
    let dist = lumen::cluster::executor::run_distributed(
        &sim,
        n,
        lumen::cluster::executor::DistributedConfig {
            seed: 11,
            tasks: 8,
            workers: 3,
            failure_rate: 0.0,
        },
    );
    assert_eq!(par.tally, dist.result.tally);
}
