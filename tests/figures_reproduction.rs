//! End-to-end reproduction checks for the paper's figures: the banana of
//! Fig 3 must emerge from the physics, the Fig 4 head model must show the
//! reported layer behaviour, and the source-footprint conclusions must
//! hold.

use lumen::analysis::profile::surface_beam_width;
use lumen::analysis::{banana_metrics, threshold_fraction, Projection2D};
use lumen::core::{
    Backend, Detector, GridSpec, Rayon, Scenario, Simulation, SimulationOptions, Source, Vec3,
};
use lumen::tissue::presets::{adult_head, homogeneous_white_matter, AdultHeadConfig};

fn run(sim: &Simulation, photons: u64, seed: u64) -> lumen::core::RunReport {
    let scenario = Scenario::from_simulation(sim, photons, seed).with_tasks(32);
    Rayon::default().run(&scenario).expect("valid scenario")
}

fn with_grid(sim: Simulation, spec: GridSpec) -> Simulation {
    sim.with_options(SimulationOptions { path_grid: Some(spec), ..Default::default() })
}

fn with_absorption_grid(sim: Simulation, spec: GridSpec) -> Simulation {
    sim.with_options(SimulationOptions { absorption_grid: Some(spec), ..Default::default() })
}

#[test]
fn fig3_banana_emerges_in_white_matter() {
    let separation = 6.0;
    let spec =
        GridSpec::cubic(50, Vec3::new(-3.0, -3.0, 0.0), Vec3::new(separation + 3.0, 3.0, 9.0));
    let sim = with_grid(
        Simulation::new(homogeneous_white_matter(), Source::Delta, Detector::new(separation, 1.0)),
        spec,
    );
    let res = run(&sim, 600_000, 3);
    assert!(res.tally.detected > 100, "need detections: {}", res.tally.detected);

    let mut proj = Projection2D::from_grid(res.tally.path_grid.as_ref().unwrap());
    threshold_fraction(&mut proj, 0.05);
    let metrics = banana_metrics(&proj, separation);
    assert!(
        metrics.is_banana(separation),
        "thresholded detected paths must form a banana: {metrics:?}"
    );
    // The arch peaks between source and detector.
    assert!(
        metrics.deepest_x > separation * 0.2 && metrics.deepest_x < separation * 0.8,
        "deepest point at x = {}",
        metrics.deepest_x
    );
}

#[test]
fn fig4_head_model_layer_behaviour() {
    let cfg = AdultHeadConfig::default();
    let sim = Simulation::new(adult_head(cfg), Source::Delta, Detector::ring(30.0, 2.0));
    let res = run(&sim, 150_000, 4);

    // All detected photons traverse the scalp; monotonically fewer reach
    // each deeper layer.
    let fractions: Vec<f64> = (0..5).map(|i| res.detected_reached_layer_fraction(i)).collect();
    assert!((fractions[0] - 1.0).abs() < 1e-9);
    for w in fractions.windows(2) {
        assert!(w[0] >= w[1], "layer reach must be monotone: {fractions:?}");
    }
}

#[test]
fn fig4_some_detected_photons_probe_deep_tissue() {
    // At a 30 mm spacing, detected photons should at least reach the CSF
    // and typically the grey matter (the paper's "intensely sensitive
    // region is confined to the grey matter"). A ring detector gives the
    // statistics a disc would need ~30x the photons for.
    let cfg = AdultHeadConfig::default();
    let sim = Simulation::new(adult_head(cfg), Source::Delta, Detector::ring(30.0, 2.0));
    let res = run(&sim, 200_000, 5);
    assert!(res.tally.detected > 30);
    assert!(
        res.max_penetration_depth() > cfg.csf_depth(),
        "max depth {} should pass the CSF at {}",
        res.max_penetration_depth(),
        cfg.csf_depth()
    );
    assert!(res.detected_reached_layer_fraction(2) > 0.1, "CSF reach");
}

#[test]
fn source_footprint_shapes_surface_distribution() {
    // The paper: footprint affects the distribution; the laser stays a
    // narrow beam. The injected beam is visible in the absorption grid of
    // *all* photons (detected-only paths are biased toward the detector).
    let spec = GridSpec::cubic(40, Vec3::new(-5.0, -5.0, 0.0), Vec3::new(5.0, 5.0, 10.0));
    let widths: Vec<f64> = [Source::Delta, Source::Uniform { radius: 3.0 }]
        .into_iter()
        .map(|source| {
            let sim = with_absorption_grid(
                Simulation::new(homogeneous_white_matter(), source, Detector::new(6.0, 1.0)),
                spec,
            );
            let res = run(&sim, 100_000, 6);
            let proj = Projection2D::from_grid(res.tally.absorption_grid.as_ref().unwrap());
            surface_beam_width(&proj, 4)
        })
        .collect();
    assert!(
        widths[0] < widths[1],
        "delta beam ({}) should be narrower than a 3 mm uniform footprint ({})",
        widths[0],
        widths[1]
    );
}

#[test]
fn gating_selects_path_lengths() {
    use lumen::core::GateWindow;
    // Calibrate the gate around the ungated mean pathlength so both
    // windows are populated regardless of the medium's DPF.
    let open = Simulation::new(homogeneous_white_matter(), Source::Delta, Detector::new(5.0, 1.0));
    let ref_run = run(&open, 200_000, 70);
    assert!(ref_run.tally.detected > 50, "reference run needs detections");
    let mean = ref_run.mean_detected_pathlength();

    let sim_early = Simulation::new(
        homogeneous_white_matter(),
        Source::Delta,
        Detector::new(5.0, 1.0).with_gate(GateWindow::new(0.0, mean).unwrap()),
    );
    let sim_late = Simulation::new(
        homogeneous_white_matter(),
        Source::Delta,
        Detector::new(5.0, 1.0).with_gate(GateWindow::new(mean, mean * 20.0).unwrap()),
    );
    let early = run(&sim_early, 400_000, 7);
    let late = run(&sim_late, 400_000, 7);
    if early.tally.detected > 20 && late.tally.detected > 20 {
        assert!(
            late.mean_detected_pathlength() > early.mean_detected_pathlength(),
            "late gate should select longer paths"
        );
        assert!(
            late.mean_penetration_depth() > early.mean_penetration_depth(),
            "late gate should select deeper photons"
        );
    } else {
        panic!(
            "insufficient detections for gating test: early {}, late {}",
            early.tally.detected, late.tally.detected
        );
    }
}
