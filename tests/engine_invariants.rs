//! Property-based invariants of the transport engine across random media
//! and configurations: whatever the optical properties, certain physical
//! facts must hold for every photon and every tally.

use lumen::core::{Detector, Simulation, SimulationOptions, Source};
use lumen::mcrng::StreamFactory;
use lumen::tissue::presets::semi_infinite_phantom;
use lumen::tissue::{LayeredTissue, OpticalProperties};
use proptest::prelude::*;

fn arbitrary_phantom() -> impl Strategy<Value = LayeredTissue> {
    (0.001f64..2.0, 0.5f64..50.0, -0.9f64..0.95, 1.0f64..1.6)
        .prop_map(|(mu_a, mu_s, g, n)| semi_infinite_phantom(mu_a, mu_s, g, n))
}

fn arbitrary_two_layer() -> impl Strategy<Value = LayeredTissue> {
    (0.01f64..1.0, 1.0f64..30.0, 0.0f64..0.95, 1.0f64..1.6, 0.5f64..5.0, 0.01f64..1.0, 1.0f64..30.0)
        .prop_map(|(a1, s1, g, n, thick, a2, s2)| {
            LayeredTissue::stack(
                vec![
                    ("top".into(), thick, OpticalProperties::new(a1, s1, g, n)),
                    ("bottom".into(), f64::INFINITY, OpticalProperties::new(a2, s2, g, n)),
                ],
                1.0,
            )
            .expect("valid stack")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_fates_terminal_and_weights_accounted(
        tissue in arbitrary_phantom(), seed in 0u64..1000
    ) {
        let sim = Simulation::new(tissue, Source::Delta, Detector::new(2.0, 0.5));
        let n = 2_000u64;
        let mut tally = sim.new_tally();
        let mut rng = StreamFactory::new(seed).stream(0);
        let mut scratch = lumen::core::sim::Scratch::default();
        for _ in 0..n {
            let fate = sim.trace_photon(&mut rng, &mut tally, &mut scratch, None);
            prop_assert!(fate.terminal());
        }
        prop_assert_eq!(tally.launched, n);
        prop_assert_eq!(
            tally.detected + tally.reflected + tally.transmitted
                + tally.roulette_killed + tally.fully_absorbed + tally.expired,
            n
        );
        // Weight bookkeeping: all tallied weights are non-negative and the
        // accounted fraction is physical (roulette noise stays small at 2k
        // photons but is unbounded in theory; allow a loose band).
        prop_assert!(tally.detected_weight >= 0.0);
        prop_assert!(tally.reflected_weight >= 0.0);
        prop_assert!(tally.transmitted_weight >= 0.0);
        prop_assert!(tally.total_absorbed() >= 0.0);
        let frac = tally.accounted_weight_fraction();
        prop_assert!((0.8..1.2).contains(&frac), "accounted {}", frac);
        prop_assert_eq!(tally.expired, 0);
    }

    #[test]
    fn detected_paths_are_geometrically_consistent(
        tissue in arbitrary_phantom(), seed in 0u64..100
    ) {
        let options = SimulationOptions { record_paths: 16, ..Default::default() };
        let sim = Simulation::new(tissue, Source::Delta, Detector::new(2.0, 1.0))
            .with_options(options);
        let res = sim.run(20_000, seed);
        for path in &res.sample_paths {
            let start = path.vertices.first().expect("non-empty path");
            let end = path.vertices.last().expect("non-empty path");
            // Photons launch on the surface and are detected on it.
            prop_assert!(start.z.abs() < 1e-9);
            prop_assert!(end.z.abs() < 1e-6);
            // Detected exit is inside the aperture.
            prop_assert!(sim.detector.in_aperture(*end));
            // Pathlength is at least the polyline length (equal up to fp).
            let polyline: f64 = path
                .vertices
                .windows(2)
                .map(|p| p[0].distance(p[1]))
                .sum();
            prop_assert!(
                (path.pathlength - polyline).abs() < 1e-6 * (1.0 + polyline),
                "pathlength {} vs polyline {}", path.pathlength, polyline
            );
            // And at least the straight-line source-detector distance.
            prop_assert!(path.pathlength + 1e-9 >= start.distance(*end));
            prop_assert!(path.exit_weight > 0.0 && path.exit_weight <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn layered_media_conserve_energy(
        tissue in arbitrary_two_layer(), seed in 0u64..100
    ) {
        let sim = Simulation::new(tissue, Source::Delta, Detector::new(2.0, 0.5));
        let res = sim.run(4_000, seed);
        let frac = res.tally.accounted_weight_fraction();
        prop_assert!((0.85..1.15).contains(&frac), "accounted {}", frac);
        prop_assert_eq!(res.tally.expired, 0);
    }

    #[test]
    fn sources_never_launch_outside_their_footprint(
        radius in 0.1f64..5.0, seed in 0u64..50
    ) {
        let mut rng = StreamFactory::new(seed).stream(0);
        let _ = lumen::mcrng::McRng::next_u64(&mut rng);
        for source in [Source::Uniform { radius }, Source::Gaussian { radius }] {
            for _ in 0..200 {
                let p = source.sample_position(&mut rng);
                prop_assert_eq!(p.z, 0.0);
                if matches!(source, Source::Uniform { .. }) {
                    prop_assert!(p.radial() <= radius + 1e-12);
                }
            }
        }
    }
}
