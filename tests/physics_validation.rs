//! Cross-crate physics validation: energy conservation, known limits, and
//! the qualitative NIRS facts the paper's Sect. 2 states.

use lumen::core::{Backend, Detector, Rayon, Scenario, Simulation, Source};
use lumen::tissue::presets::{
    adult_head, homogeneous_white_matter, semi_infinite_phantom, AdultHeadConfig,
};

fn run(sim: &Simulation, n: u64, seed: u64) -> lumen::core::SimulationResult {
    let scenario = Scenario::from_simulation(sim, n, seed).with_tasks(16);
    Rayon::default().run(&scenario).expect("valid scenario").result
}

#[test]
fn energy_conservation_across_media() {
    for (label, tissue) in [
        ("white matter", homogeneous_white_matter()),
        ("adult head", adult_head(AdultHeadConfig::default())),
        ("matched phantom", semi_infinite_phantom(0.1, 10.0, 0.5, 1.0)),
        ("mismatched phantom", semi_infinite_phantom(0.05, 5.0, 0.9, 1.5)),
    ] {
        let sim = Simulation::new(tissue, Source::Delta, Detector::new(5.0, 1.0));
        let res = run(&sim, 30_000, 1);
        let frac = res.tally.accounted_weight_fraction();
        assert!((frac - 1.0).abs() < 0.02, "{label}: accounted weight fraction {frac}");
    }
}

#[test]
fn semi_infinite_medium_has_no_transmittance() {
    let sim = Simulation::new(homogeneous_white_matter(), Source::Delta, Detector::new(5.0, 1.0));
    let res = run(&sim, 20_000, 2);
    assert_eq!(res.tally.transmitted, 0);
    assert_eq!(res.transmittance(), 0.0);
}

#[test]
fn higher_albedo_means_more_reflectance() {
    // Diffusion theory: diffuse reflectance of a semi-infinite medium grows
    // with albedo'. Compare two phantoms differing only in absorption.
    let bright = semi_infinite_phantom(0.01, 10.0, 0.0, 1.0);
    let dark = semi_infinite_phantom(1.0, 10.0, 0.0, 1.0);
    let det = Detector::new(2.0, 0.5);
    let r_bright =
        run(&Simulation::new(bright, Source::Delta, det), 30_000, 3).diffuse_reflectance();
    let r_dark = run(&Simulation::new(dark, Source::Delta, det), 30_000, 3).diffuse_reflectance();
    assert!(
        r_bright > 2.0 * r_dark,
        "low absorption should reflect much more: {r_bright} vs {r_dark}"
    );
}

#[test]
fn milstein_benchmark_total_reflectance() {
    // Classic MCML validation point (van de Hulst / Prahl tables): for a
    // matched-boundary semi-infinite medium with albedo a = mu_s/mu_t = 0.9
    // and isotropic scattering, total diffuse reflectance ≈ 0.41.
    let mu_s = 9.0;
    let mu_a = 1.0;
    let tissue = semi_infinite_phantom(mu_a, mu_s, 0.0, 1.0);
    let sim = Simulation::new(tissue, Source::Delta, Detector::new(1.0, 0.1));
    let res = run(&sim, 200_000, 4);
    let r = res.diffuse_reflectance();
    assert!(
        (r - 0.41).abs() < 0.02,
        "albedo-0.9 semi-infinite reflectance should be ~0.41, got {r}"
    );
}

#[test]
fn detected_pathlength_exceeds_separation_substantially() {
    // "The highly scattering nature of biological tissue means that photons
    // travel a considerably greater distance than the direct source-
    // detector path."
    let sim = Simulation::new(homogeneous_white_matter(), Source::Delta, Detector::new(6.0, 1.0));
    let res = run(&sim, 300_000, 5);
    assert!(res.tally.detected > 50, "need detections for statistics");
    let dpf = res.differential_pathlength_factor(6.0);
    assert!(dpf > 2.0, "DPF in scattering tissue should exceed 2, got {dpf}");
}

#[test]
fn deeper_layers_absorb_less_in_head_model() {
    // Attenuation with depth: scalp absorbs more total weight than white
    // matter despite lower mu_a, because far more light visits it.
    let sim = Simulation::new(
        adult_head(AdultHeadConfig::default()),
        Source::Delta,
        Detector::new(30.0, 3.0),
    );
    let res = run(&sim, 100_000, 6);
    let by_layer = res.absorbed_fraction_by_layer();
    assert_eq!(by_layer.len(), 5);
    assert!(
        by_layer[0] > by_layer[4],
        "scalp {} should absorb more than white matter {}",
        by_layer[0],
        by_layer[4]
    );
    // Every layer absorbs something.
    assert!(by_layer.iter().all(|&f| f > 0.0), "{by_layer:?}");
}

#[test]
fn most_photons_reflect_before_csf() {
    // The paper's Fig 4 finding: "Most of the photons are reflected before
    // they enter the CSF, however some do penetrate all the way into the
    // white matter tissue."
    let cfg = AdultHeadConfig::default();
    let sim = Simulation::new(adult_head(cfg), Source::Delta, Detector::new(30.0, 3.0));
    let res = run(&sim, 100_000, 7);
    // Superficial absorption (scalp+skull) dominates deep absorption.
    let by_layer = res.absorbed_fraction_by_layer();
    let superficial = by_layer[0] + by_layer[1];
    let deep = by_layer[3] + by_layer[4];
    assert!(superficial > deep, "superficial {superficial} vs deep {deep}");
    // But some white-matter absorption exists — light does reach it.
    assert!(by_layer[4] > 0.0);
}

#[test]
fn larger_separation_means_longer_paths() {
    let mk = |sep: f64| {
        let sim =
            Simulation::new(homogeneous_white_matter(), Source::Delta, Detector::new(sep, 1.0));
        run(&sim, 400_000, 8)
    };
    let near = mk(3.0);
    let far = mk(8.0);
    assert!(near.tally.detected > far.tally.detected, "signal falls with separation");
    if far.tally.detected > 20 {
        assert!(
            far.mean_detected_pathlength() > near.mean_detected_pathlength(),
            "farther detectors see longer paths"
        );
    }
}

#[test]
fn index_mismatch_produces_specular_reflection() {
    let sim = Simulation::new(homogeneous_white_matter(), Source::Delta, Detector::new(5.0, 1.0));
    let res = run(&sim, 10_000, 9);
    let expected = ((1.0f64 - 1.4) / (1.0 + 1.4)).powi(2);
    assert!((res.specular_reflectance() - expected).abs() < 1e-9);
}

#[test]
fn radial_reflectance_matches_diffusion_theory_decay() {
    // Independent cross-check of the whole transport engine: far from the
    // source, the Monte Carlo R(r) of a semi-infinite scattering medium
    // must decay at the rate mu_eff predicted by the diffusion
    // approximation (Farrell-Patterson dipole model).
    use lumen::analysis::diffusion::{fit_log_slope, DiffusionModel};
    use lumen::core::RadialSpec;

    let mu_a = 0.05;
    let mu_s = 20.0; // g = 0.5 -> mu_s' = 10.0: strongly diffusive
    let g = 0.5;
    let tissue = semi_infinite_phantom(mu_a, mu_s, g, 1.0);
    let mut sim = Simulation::new(tissue, Source::Delta, Detector::new(100.0, 0.1));
    sim.options.reflectance_profile = Some(RadialSpec { nr: 60, r_max: 15.0 });

    let res = run(&sim, 400_000, 21);
    let profile = res.tally.reflectance_r.as_ref().expect("profile attached");
    let per_area = profile.per_area(res.launched());

    // Fit the decay over 4..12 mm (beyond ~3 transport mfps, where
    // diffusion theory is valid).
    let spec = profile.spec;
    let (mut rhos, mut vals) = (Vec::new(), Vec::new());
    for (i, &value) in per_area.iter().enumerate().take(spec.nr) {
        let r = spec.r_of(i);
        if (4.0..12.0).contains(&r) {
            rhos.push(r);
            vals.push(value);
        }
    }
    let slope = fit_log_slope(&rhos, &vals).expect("enough populated bins");

    let model = DiffusionModel::new(mu_a, mu_s * (1.0 - g), 1.0);
    let predicted = model.asymptotic_slope();
    let rel_err = (slope - predicted).abs() / predicted.abs();
    assert!(
        rel_err < 0.15,
        "MC decay {slope:.4}/mm vs diffusion mu_eff {predicted:.4}/mm ({:.1}% off)",
        rel_err * 100.0
    );
}

#[test]
fn radial_profile_total_matches_reflectance_tallies() {
    // The R(r) profile integrates to exactly the diffuse reflectance the
    // scalar tallies report (same escapes, two bookkeepers).
    use lumen::core::RadialSpec;
    let tissue = semi_infinite_phantom(0.1, 10.0, 0.0, 1.4);
    let mut sim = Simulation::new(tissue, Source::Delta, Detector::new(3.0, 1.0));
    sim.options.reflectance_profile = Some(RadialSpec { nr: 30, r_max: 50.0 });
    let res = run(&sim, 30_000, 22);
    let profile = res.tally.reflectance_r.as_ref().unwrap();
    let total_profile = profile.total() / res.launched() as f64;
    let total_scalar = res.diffuse_reflectance();
    assert!(
        (total_profile - total_scalar).abs() < 1e-12,
        "profile {total_profile} vs scalar {total_scalar}"
    );
}

#[test]
fn absorption_rz_matches_layer_totals() {
    use lumen::core::RadialSpec;
    let tissue = semi_infinite_phantom(0.5, 10.0, 0.0, 1.0);
    let mut sim = Simulation::new(tissue, Source::Delta, Detector::new(3.0, 1.0));
    sim.options.absorption_rz = Some((RadialSpec { nr: 20, r_max: 100.0 }, 50, 200.0));
    let res = run(&sim, 20_000, 23);
    let rz = res.tally.absorption_rz.as_ref().unwrap();
    let total_rz = rz.total() / res.launched() as f64;
    let total_layers = res.absorbed_fraction();
    assert!(
        (total_rz - total_layers).abs() < 1e-9,
        "A(r,z) total {total_rz} vs layer total {total_layers}"
    );
}

#[test]
fn numerical_aperture_reduces_detections() {
    let open_det = Detector::new(3.0, 1.0);
    let narrow_det = Detector::new(3.0, 1.0).with_numerical_aperture(0.3, 1.0);
    let tissue = homogeneous_white_matter();
    let a = run(&Simulation::new(tissue.clone(), Source::Delta, open_det), 200_000, 30);
    let b = run(&Simulation::new(tissue, Source::Delta, narrow_det), 200_000, 30);
    assert!(a.tally.detected > 0);
    assert!(
        b.tally.detected < a.tally.detected,
        "NA 0.3 should reject angles: {} vs {}",
        b.tally.detected,
        a.tally.detected
    );
    assert!(b.tally.na_rejected > 0, "rejections must be counted");
    // Diffuse reflectance (detected + reflected) is unchanged physics.
    let ra = a.diffuse_reflectance();
    let rb = b.diffuse_reflectance();
    assert!((ra - rb).abs() / ra < 0.02, "{ra} vs {rb}");
}

#[test]
fn finite_slab_conserves_and_transmits() {
    use lumen::tissue::{LayeredTissue, OpticalProperties};
    // A thin, weakly absorbing slab must show substantial transmittance
    // and R + T + A + specular ≈ 1.
    let slab = LayeredTissue::stack(
        vec![("slab".into(), 1.0, OpticalProperties::new(0.01, 5.0, 0.8, 1.0))],
        1.0,
    )
    .unwrap();
    let sim = Simulation::new(slab, Source::Delta, Detector::new(2.0, 0.5));
    let res = run(&sim, 50_000, 31);
    assert!(res.tally.transmitted > 0, "thin slab must transmit");
    let total = res.specular_reflectance()
        + res.diffuse_reflectance()
        + res.transmittance()
        + res.absorbed_fraction();
    assert!((total - 1.0).abs() < 0.01, "R+T+A = {total}");
    // Most light goes through an optically thin forward-scattering slab.
    assert!(res.transmittance() > 0.5, "T = {}", res.transmittance());
}

#[test]
fn thicker_slab_transmits_less() {
    use lumen::tissue::{LayeredTissue, OpticalProperties};
    let mk = |thickness: f64| {
        let slab = LayeredTissue::stack(
            vec![("slab".into(), thickness, OpticalProperties::new(0.1, 10.0, 0.5, 1.0))],
            1.0,
        )
        .unwrap();
        run(&Simulation::new(slab, Source::Delta, Detector::new(2.0, 0.5)), 30_000, 32)
            .transmittance()
    };
    let thin = mk(0.5);
    let mid = mk(2.0);
    let thick = mk(8.0);
    assert!(thin > mid && mid > thick, "T must fall with thickness: {thin} {mid} {thick}");
}

#[test]
fn partial_pathlengths_sum_to_total_pathlength() {
    // The per-layer partial pathlengths of detected photons must sum to
    // their total pathlength, in any medium.
    let sim = Simulation::new(
        adult_head(AdultHeadConfig::default()),
        Source::Delta,
        Detector::ring(30.0, 2.0),
    );
    let res = run(&sim, 150_000, 40);
    assert!(res.tally.detected > 30);
    let partial_sum: f64 = res.tally.detected_partial_path.iter().sum();
    let total = res.tally.detected_path_sum;
    assert!((partial_sum - total).abs() < 1e-6 * total, "partials {partial_sum} vs total {total}");
}

#[test]
fn homogeneous_medium_has_all_path_in_layer_zero() {
    let sim = Simulation::new(homogeneous_white_matter(), Source::Delta, Detector::new(3.0, 1.0));
    let res = run(&sim, 100_000, 41);
    assert!(res.tally.detected > 20);
    assert!(
        (res.mean_partial_pathlength(0) - res.mean_detected_pathlength()).abs()
            < 1e-9 * res.mean_detected_pathlength()
    );
}

#[test]
fn superficial_layers_dominate_partial_pathlength() {
    // The NIRS sensitivity hierarchy: detected photons spend most of their
    // path in the scalp/skull, least in the white matter — quantifying
    // "which cells dominate the detected light signal".
    let sim = Simulation::new(
        adult_head(AdultHeadConfig::default()),
        Source::Delta,
        Detector::ring(30.0, 2.0),
    );
    let res = run(&sim, 200_000, 42);
    assert!(res.tally.detected > 50);
    let ppl = res.mean_partial_pathlengths();
    assert!(ppl[0] + ppl[1] > ppl[3] + ppl[4], "superficial {:?} should dominate deep layers", ppl);
    assert!(ppl[4] < ppl[3], "white matter sees less path than grey: {ppl:?}");
}
