//! Cross-crate consistency: every execution backend must agree on the
//! physics; failures must not change results; the DES must reproduce the
//! paper's scaling claims.

use lumen::cluster::{
    speedup_curve, AvailabilityModel, ClusterSim, FailurePlan, JobSpec, NetworkModel,
    ThreadedCluster,
};
use lumen::core::{Backend, Detector, EngineError, Rayon, Scenario, Sequential, Source};
use lumen::tissue::presets::{homogeneous_white_matter, semi_infinite_phantom};

fn scenario() -> Scenario {
    Scenario::new(
        semi_infinite_phantom(0.1, 10.0, 0.5, 1.4),
        Source::Delta,
        Detector::new(3.0, 1.0),
    )
    .with_photons(6_000)
    .with_tasks(12)
    .with_seed(77)
}

#[test]
fn backend_matrix_bit_identical() {
    // The backend-equivalence matrix: one fixed-seed scenario through
    // every physics-executing backend must give bit-identical tallies.
    let s = scenario();
    let backends: Vec<Box<dyn Backend>> = vec![
        Box::new(Sequential),
        Box::new(Rayon::default()),
        Box::new(Rayon::with_threads(2)),
        Box::new(ThreadedCluster::new(3)),
        Box::new(ThreadedCluster::new(1)),
    ];
    let reference = backends[0].run(&s).expect("valid scenario");
    for backend in &backends[1..] {
        let report = backend.run(&s).expect("valid scenario");
        assert_eq!(
            reference.result.tally,
            report.result.tally,
            "backend `{}` disagrees with `sequential`",
            backend.name()
        );
    }
    assert_eq!(reference.launched(), 6_000);
}

#[test]
fn worker_count_does_not_change_results() {
    let s = scenario().with_photons(5_000).with_tasks(10).with_seed(9);
    let mk = |workers| ThreadedCluster::new(workers).run(&s).expect("valid scenario").result.tally;
    let one = mk(1);
    let four = mk(4);
    let eight = mk(8);
    assert_eq!(one, four);
    assert_eq!(four, eight);
}

#[test]
fn failures_change_nothing_but_requeue_counts() {
    // 32 tasks at 50%: P(zero failures) ~ 2e-10 — cannot flake.
    let s = scenario().with_photons(5_000).with_tasks(32).with_seed(4);
    let clean = ThreadedCluster::new(4).run(&s).expect("valid scenario");
    let faulty = ThreadedCluster::new(4)
        .with_failure_plan(FailurePlan::Random { rate: 0.5 })
        .run(&s)
        .expect("valid scenario");
    assert_eq!(clean.result.tally, faulty.result.tally);
    assert!(faulty.requeues > 0);
    assert_eq!(clean.requeues, 0);
}

#[test]
fn invalid_backend_configs_are_typed_errors() {
    let s = scenario();
    assert!(matches!(ThreadedCluster::new(0).run(&s), Err(EngineError::InvalidConfig(_))));
    assert!(matches!(
        ThreadedCluster::new(2).with_failure_plan(FailurePlan::Random { rate: 1.0 }).run(&s),
        Err(EngineError::InvalidConfig(_))
    ));
    assert!(matches!(Sequential.run(&s.with_tasks(0)), Err(EngineError::InvalidConfig(_))));
}

#[test]
fn des_reproduces_fig2_shape() {
    // Near-linear speedup, >95% efficiency at 60 homogeneous processors.
    let points = speedup_curve(
        &JobSpec::paper_job(),
        &[1, 20, 40, 60],
        NetworkModel::lan_2006(),
        AvailabilityModel::DEDICATED,
        1,
    );
    assert!((points[0].speedup - 1.0).abs() < 1e-9);
    for w in points.windows(2) {
        assert!(w[1].speedup > w[0].speedup, "monotone speedup");
    }
    let last = points.last().unwrap();
    assert!(last.efficiency > 0.95, "efficiency at 60: {}", last.efficiency);
}

#[test]
fn des_reproduces_table2_two_hour_runtime() {
    let cluster = ClusterSim {
        pool: lumen::cluster::table2_pool(),
        network: NetworkModel::lan_2006(),
        availability: AvailabilityModel::semi_idle(),
        seed: 10,
    };
    let report = cluster.run(&JobSpec::paper_job());
    let hours = report.makespan_s / 3600.0;
    assert!((1.0..4.0).contains(&hours), "expected ~2 h, got {hours:.2} h");
    // All 150 machines contributed.
    assert_eq!(report.machine_tasks.len(), 150);
    assert!(report.machine_tasks.iter().all(|&t| t > 0), "every client got work");
}

#[test]
fn executor_handles_white_matter_workload() {
    // End-to-end: real physics + real protocol + failures, via the
    // unified backend API.
    let s = Scenario::new(homogeneous_white_matter(), Source::Delta, Detector::new(5.0, 1.0))
        .with_photons(20_000)
        .with_tasks(16)
        .with_seed(2);
    let report = ThreadedCluster::new(4)
        .with_failure_plan(FailurePlan::Random { rate: 0.1 })
        .run(&s)
        .expect("valid scenario");
    assert_eq!(report.result.launched(), 20_000);
    let frac = report.result.tally.accounted_weight_fraction();
    assert!((frac - 1.0).abs() < 0.03, "energy accounted: {frac}");
    // Per-worker accounting covers the whole budget.
    let photons: u64 = report.workers.iter().map(|w| w.photons).sum();
    assert_eq!(photons, 20_000);
}
