//! Cross-crate consistency: the sequential engine, the rayon driver, and
//! the threaded master/worker platform must all agree; failures must not
//! change physics; the DES must reproduce the paper's scaling claims.

use lumen::cluster::{
    run_distributed, speedup_curve, AvailabilityModel, ClusterSim, DistributedConfig, JobSpec,
    NetworkModel,
};
use lumen::core::{Detector, ParallelConfig, Simulation, Source};
use lumen::tissue::presets::{homogeneous_white_matter, semi_infinite_phantom};

fn sim() -> Simulation {
    Simulation::new(
        semi_infinite_phantom(0.1, 10.0, 0.5, 1.4),
        Source::Delta,
        Detector::new(3.0, 1.0),
    )
}

#[test]
fn three_execution_paths_agree_exactly() {
    let s = sim();
    let n = 6_000;
    let tasks = 12;
    let seed = 77;

    let rayon_res = lumen::core::run_parallel(&s, n, ParallelConfig { seed, tasks });
    let dist =
        run_distributed(&s, n, DistributedConfig { seed, tasks, workers: 3, failure_rate: 0.0 });
    assert_eq!(rayon_res.tally, dist.result.tally, "rayon vs master/worker");

    // Sequential equals a single-task parallel run.
    let seq = s.run(n, seed);
    let single = lumen::core::run_parallel(&s, n, ParallelConfig { seed, tasks: 1 });
    assert_eq!(seq.tally, single.tally, "sequential vs 1-task parallel");
}

#[test]
fn worker_count_does_not_change_results() {
    let s = sim();
    let n = 5_000;
    let mk = |workers| {
        run_distributed(&s, n, DistributedConfig { seed: 9, tasks: 10, workers, failure_rate: 0.0 })
            .result
            .tally
    };
    let one = mk(1);
    let four = mk(4);
    let eight = mk(8);
    assert_eq!(one, four);
    assert_eq!(four, eight);
}

#[test]
fn failures_change_nothing_but_requeue_counts() {
    let s = sim();
    let n = 5_000;
    let clean = run_distributed(
        &s,
        n,
        DistributedConfig { seed: 4, tasks: 10, workers: 4, failure_rate: 0.0 },
    );
    let faulty = run_distributed(
        &s,
        n,
        DistributedConfig { seed: 4, tasks: 10, workers: 4, failure_rate: 0.4 },
    );
    assert_eq!(clean.result.tally, faulty.result.tally);
    assert!(faulty.requeues > 0);
    assert_eq!(clean.requeues, 0);
}

#[test]
fn des_reproduces_fig2_shape() {
    // Near-linear speedup, >95% efficiency at 60 homogeneous processors.
    let points = speedup_curve(
        &JobSpec::paper_job(),
        &[1, 20, 40, 60],
        NetworkModel::lan_2006(),
        AvailabilityModel::DEDICATED,
        1,
    );
    assert!((points[0].speedup - 1.0).abs() < 1e-9);
    for w in points.windows(2) {
        assert!(w[1].speedup > w[0].speedup, "monotone speedup");
    }
    let last = points.last().unwrap();
    assert!(last.efficiency > 0.95, "efficiency at 60: {}", last.efficiency);
}

#[test]
fn des_reproduces_table2_two_hour_runtime() {
    let cluster = ClusterSim {
        pool: lumen::cluster::table2_pool(),
        network: NetworkModel::lan_2006(),
        availability: AvailabilityModel::semi_idle(),
        seed: 10,
    };
    let report = cluster.run(&JobSpec::paper_job());
    let hours = report.makespan_s / 3600.0;
    assert!((1.0..4.0).contains(&hours), "expected ~2 h, got {hours:.2} h");
    // All 150 machines contributed.
    assert_eq!(report.machine_tasks.len(), 150);
    assert!(report.machine_tasks.iter().all(|&t| t > 0), "every client got work");
}

#[test]
fn executor_handles_white_matter_workload() {
    // End-to-end: real physics + real protocol + failures.
    let s = Simulation::new(homogeneous_white_matter(), Source::Delta, Detector::new(5.0, 1.0));
    let report = run_distributed(
        &s,
        20_000,
        DistributedConfig { seed: 2, tasks: 16, workers: 4, failure_rate: 0.1 },
    );
    assert_eq!(report.result.launched(), 20_000);
    let frac = report.result.tally.accounted_weight_fraction();
    assert!((frac - 1.0).abs() < 0.03, "energy accounted: {frac}");
}
