//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the `lumen-bench` benches use —
//! `criterion_group!`/`criterion_main!`, [`Criterion::benchmark_group`],
//! `bench_function`/`bench_with_input`, [`Throughput`], [`BenchmarkId`]
//! and `Bencher::iter` — as a small wall-clock harness: each benchmark
//! is warmed up, then timed over `sample_size` samples, and the
//! per-iteration mean/min plus optional throughput are printed to
//! stdout. No statistics beyond that, no HTML reports, no comparison to
//! previous runs; swap in the real criterion via the workspace manifest
//! when those are needed.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers work like the real crate.
pub use std::hint::black_box;

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier for a function/parameter pair.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function.into(), parameter) }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Entry point handed to each benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup { _parent: self, name, sample_size: 20, throughput: None }
    }

    /// Benchmark `f` outside any group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.benchmark_group("criterion").bench_function(id, f);
        self
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare per-iteration throughput, reported as elem/s or B/s.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark `f`.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string(), self.throughput);
        self
    }

    /// Benchmark `f` against one `input` value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.to_string(), self.throughput);
        self
    }

    /// Close the group (cosmetic in the shim).
    pub fn finish(self) {
        println!();
    }
}

/// Times a closure, collecting one duration per sample.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, auto-scaling iterations-per-sample so a sample
    /// lasts ≳1 ms (or is a single call if the routine is slower).
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up and calibration: time a single call.
        let start = Instant::now();
        black_box(routine());
        let single = start.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(1).as_nanos() / single.as_nanos()).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("  {group}/{id}: no samples (b.iter never called)");
            return;
        }
        let mean = self.samples.iter().sum::<Duration>().as_secs_f64() / self.samples.len() as f64;
        let min = self.samples.iter().min().expect("non-empty").as_secs_f64();
        let rate = match throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  ({:.3e} elem/s)", n as f64 / mean)
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  ({:.3e} B/s)", n as f64 / mean)
            }
            _ => String::new(),
        };
        println!(
            "  {group}/{id}: mean {:.3} µs, min {:.3} µs over {} samples{rate}",
            mean * 1e6,
            min * 1e6,
            self.samples.len()
        );
    }
}

/// Bundle benchmark functions into a group runner, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the listed groups, like criterion's.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
