//! The [`Strategy`] trait and the combinators the workspace's tests use.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of `Self::Value`.
///
/// Mirrors `proptest::strategy::Strategy` closely enough that
/// `impl Strategy<Value = T>` return types and `.prop_map(..)` chains
/// compile unchanged; generation is direct sampling with no shrinking.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }
}

/// Adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                debug_assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_unit_f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                // Map 53 uniform bits onto [lo, hi]; the closed upper end
                // is reachable (u == 1.0 never occurs, so stretch by the
                // next representable step and clamp).
                let u = rng.next_unit_f64() as $t;
                (lo + u * (hi - lo) * (1.0 + <$t>::EPSILON)).clamp(lo, hi)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                debug_assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                let span = (hi - lo) as u128 + 1;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($s:ident / $v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A / a, B / b);
tuple_strategy!(A / a, B / b, C / c);
tuple_strategy!(A / a, B / b, C / c, D / d);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g, H / h);
