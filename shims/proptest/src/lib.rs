//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest's syntax this workspace's property
//! tests use — the [`proptest!`] macro (with optional
//! `#![proptest_config(..)]`), range/tuple/`any`/`prop_map`/
//! [`collection::vec`](fn@collection::vec) strategies, and `prop_assert*` macros — as a
//! miniature random-testing harness:
//!
//! * each generated `#[test]` runs `ProptestConfig::cases` random cases
//!   (default 64) drawn from a deterministic per-test RNG, so failures
//!   reproduce exactly across runs and machines;
//! * `prop_assert!`/`prop_assert_eq!` report the failing case's message;
//! * there is **no shrinking** — a failing case is reported as drawn.
//!
//! Swapping in the real proptest is a one-line change in the workspace
//! manifest; the test sources compile unchanged against either.

pub mod strategy;

pub mod test_runner;

pub mod arbitrary {
    //! `any::<T>()` support.
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// Strategy for any value of `T`; see [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// The full-range strategy for `T`, mirroring `proptest::arbitrary::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary + std::fmt::Debug> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Half-open range of collection sizes, mirroring
    /// `proptest::collection::SizeRange` (the `From` impls are what pin
    /// bare `1..6` literals to `usize` during inference).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self { start: r.start, end: r.end.max(r.start) }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self { start: *r.start(), end: (*r.end()).max(*r.start()) + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { start: n, end: n + 1 }
        }
    }

    /// Strategy producing `Vec`s; see [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// `Vec` strategy with element strategy `element` and a length drawn
    /// from `len` (typically a `usize` range), mirroring
    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, len: len.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-importable names, mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Generate `#[test]` functions that run their body over random cases.
///
/// Supported grammar (the subset of proptest's this workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]   // optional
///     #[test]
///     fn name(arg in strategy, ...) { body }
///     ...
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        ::std::panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            __case + 1, __config.cases, stringify!($name), __msg
                        );
                    }
                }
            }
        )*
    };
}

/// Assert inside a [`proptest!`] body; failure fails only this case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            ));
        }
    }};
}

/// Skip the current case when `cond` is false (counts as a pass here;
/// the shim has no rejection bookkeeping).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}
