//! Test configuration and the deterministic case RNG.

/// Per-test configuration; only the fields this workspace reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps the physics-heavy
        // properties in this workspace fast while still sweeping the space.
        Self { cases: 64 }
    }
}

/// SplitMix64 seeded from the test's module path, so every run of a
/// given property replays the identical case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG keyed by `name` (FNV-1a hashed into the seed).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)` with 53 random bits.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
