//! Offline stand-in for `serde_derive`.
//!
//! Nothing in this workspace serializes at runtime — the derives on the
//! domain types exist so downstream users of the real `serde` get wire
//! formats for free. In the offline build the derive macros therefore
//! expand to nothing: the types still compile with their
//! `#[derive(Serialize, Deserialize)]` attributes intact, and swapping
//! in the real serde (see the workspace manifest) turns them back into
//! full implementations with no source change.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
