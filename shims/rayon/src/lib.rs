//! Offline stand-in for `rayon`.
//!
//! Implements the slice of rayon's API the engine uses — `par_iter()`
//! followed by `enumerate`/`map`/`collect`, plus `ThreadPoolBuilder` and
//! `ThreadPool::install` — with genuine data parallelism on
//! `std::thread::scope`. Work is split into one contiguous index chunk
//! per thread and results are reassembled in order, so `collect`ed
//! output is identical to a sequential run (which the engine's
//! determinism tests rely on).
//!
//! This is not work-stealing: per-item cost imbalance is smoothed only
//! by over-splitting (the engine already over-splits its photon budget
//! into many more tasks than threads). Substituting the real rayon is a
//! one-line change in the workspace manifest.

use std::cell::Cell;
use std::num::NonZeroUsize;

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.
    pub use crate::{IndexedParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn current_num_threads() -> usize {
    INSTALLED_THREADS
        .with(|n| n.get())
        .unwrap_or_else(|| std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1))
}

/// Error from [`ThreadPoolBuilder::build`]; the shim never fails.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error (unreachable in shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the number of worker threads.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Finish the build (infallible in the shim).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = self.num_threads.filter(|&n| n > 0).unwrap_or_else(current_num_threads);
        Ok(ThreadPool { num_threads: n })
    }
}

/// A scoped thread-count context mirroring `rayon::ThreadPool`.
///
/// The shim has no persistent workers; `install` merely pins the thread
/// count that `collect` will use for parallel work executed inside it.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count in effect.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        INSTALLED_THREADS.with(|cell| {
            let prev = cell.replace(Some(self.num_threads));
            let out = f();
            cell.set(prev);
            out
        })
    }

    /// The configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// `.par_iter()` entry point, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// The borrowed item type.
    type Item: Sync + 'data;
    /// Borrowing parallel iterator over the collection.
    fn par_iter(&'data self) -> SliceParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> SliceParIter<'data, T> {
        SliceParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> SliceParIter<'data, T> {
        SliceParIter { items: self }
    }
}

/// Core abstraction of the shim: an indexable source of independent
/// per-index work items. `collect` fans indices out across threads.
pub trait ParallelIterator: Sized + Sync {
    /// Item produced for one index.
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    /// Whether the iterator is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produce the item at `index` (called at most once per index).
    fn item_at(&self, index: usize) -> Self::Item;

    /// Pair every item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Apply `f` to every item.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Execute the pipeline across threads and gather results in index
    /// order. `C` is in practice `Vec<Self::Item>` (via the reflexive
    /// `From` impl), matching how the engine calls rayon's `collect`.
    fn collect<C: From<Vec<Self::Item>>>(self) -> C {
        let n = self.len();
        let threads = current_num_threads().clamp(1, n.max(1));
        if threads <= 1 || n <= 1 {
            return (0..n).map(|i| self.item_at(i)).collect::<Vec<_>>().into();
        }
        // One contiguous chunk per thread, reassembled in order.
        let chunk = n.div_ceil(threads);
        let mut out: Vec<Self::Item> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let this = &self;
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(n);
                    scope.spawn(move || (lo..hi).map(|i| this.item_at(i)).collect::<Vec<_>>())
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("rayon-shim worker panicked"));
            }
        });
        out.into()
    }
}

/// Marker trait for exact-length iterators (all shim iterators are).
pub trait IndexedParallelIterator: ParallelIterator {}
impl<T: ParallelIterator> IndexedParallelIterator for T {}

/// Borrowing parallel iterator over a slice.
pub struct SliceParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for SliceParIter<'data, T> {
    type Item = &'data T;
    fn len(&self) -> usize {
        self.items.len()
    }
    fn item_at(&self, index: usize) -> &'data T {
        &self.items[index]
    }
}

/// Adapter produced by [`ParallelIterator::enumerate`].
pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    fn len(&self) -> usize {
        self.base.len()
    }
    fn item_at(&self, index: usize) -> (usize, I::Item) {
        (index, self.base.item_at(index))
    }
}

/// Adapter produced by [`ParallelIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn item_at(&self, index: usize) -> R {
        (self.f)(self.base.item_at(index))
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_indices_match() {
        let xs = vec![10u32, 20, 30, 40, 50];
        let pairs: Vec<(usize, u32)> = xs.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(pairs, vec![(0, 10), (1, 20), (2, 30), (3, 40), (4, 50)]);
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 2);
            let xs: Vec<u64> = (0..100).collect();
            let sum: Vec<u64> = xs.par_iter().map(|&x| x + 1).collect();
            // sum(0..100) = 4950, plus 1 for each of the 100 items.
            assert_eq!(sum.iter().sum::<u64>(), 4950 + 100);
        });
    }
}
