//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds without network access, so instead of the
//! crates.io `rand` it ships this shim exposing the one item the code
//! depends on: the [`RngCore`] trait, signature-compatible with
//! `rand` 0.8 (minus the `Error` plumbing of `try_fill_bytes`).
//! `mcrng`'s generators implement it so they can interoperate with the
//! wider `rand` ecosystem when the real crate is substituted in
//! `[workspace.dependencies]`.

/// A random number generator core, API-compatible with `rand::RngCore`.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}
