//! Offline stand-in for `crossbeam`.
//!
//! Provides the `channel` module subset the cluster executor uses —
//! [`channel::unbounded`], cloneable [`channel::Sender`]s and
//! [`channel::Receiver`]s — implemented on `std::sync::mpsc`. Semantics
//! match crossbeam for the single-consumer usage in this workspace:
//! `send` fails once the receiver is dropped, `recv` fails once all
//! senders are dropped.

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Error returned by [`Sender::send`] when the channel is disconnected.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders have disconnected.
        Disconnected,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send `value`, failing if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of an unbounded channel.
    ///
    /// Unlike `std::sync::mpsc`, crossbeam receivers are `Clone + Sync`;
    /// the shim matches that by serialising access through a mutex.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.lock().expect("channel poisoned").recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.lock().expect("channel poisoned").try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking iterator over incoming messages; ends on disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Create an unbounded MPMC-ish channel (MPSC is sufficient for the
    /// workspace's master/worker topology).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }
}
