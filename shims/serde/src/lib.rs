//! Offline stand-in for `serde`.
//!
//! Exposes `Serialize`/`Deserialize` as both marker traits and no-op
//! derive macros, which is exactly the surface this workspace touches:
//! the domain types carry `#[derive(Serialize, Deserialize)]` so that
//! builds against the real serde produce wire formats, but no code here
//! calls serialization methods at runtime. See `shims/serde_derive` and
//! the workspace manifest for how the real crate is substituted.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker counterpart of `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
